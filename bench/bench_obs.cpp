// Observability overhead: one full BIST-aware synthesis of paulin (the
// largest built-in benchmark) with the instrumentation in every state it
// can be in.  The contract under test (docs/observability.md): the
// disabled path — a null recorder/sink pointer, which is what every
// un-instrumented run uses — must be indistinguishable from the baseline
// (<2% median latency), because it costs one predictable branch per site.
//
//   BM_SynthBaseline        opts.trace/events left null (the default)
//   BM_SynthTraceDisabled   recorder attached but not enabled
//   BM_SynthTraceEnabled    spans recorded (the price of a flamegraph)
//   BM_SynthEventsCounters  counters-only event sink (what `serve` runs)
//   BM_SynthEventsKept      full event retention (--trace-events)
//
// Profiler arms (ours, stripped before google-benchmark sees argv):
//   --overhead-only   run only the profiler-overhead tier + BENCH_obs.json
//                     (the CI perf-gate mode: synthesis of a 2k-op random
//                     DFG with the sampling profiler off vs armed at
//                     199 Hz; the contract is <5% median overhead)
//   --profile-ops N   one N-op BIST-aware synthesis under the profiler;
//                     writes PROFILE_obs.folded + PROFILE_obs.json and
//                     prints the per-span sample shares (the source of the
//                     docs/performance.md per-pass table)

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random_dfg.hpp"
#include "obs/events.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "service/metrics.hpp"

namespace {

using namespace lbist;

void run_once(benchmark::State& state, TraceRecorder* trace,
              AlgorithmEvents* events) {
  auto bench = make_paulin();
  const auto protos = parse_module_spec(bench.module_spec);
  SynthesisOptions opts;
  opts.binder = BinderKind::BistAware;
  opts.trace = trace;
  opts.events = events;
  for (auto _ : state) {
    auto result = Synthesizer(opts).run(bench.design.dfg,
                                        *bench.design.schedule, protos);
    benchmark::DoNotOptimize(result.bist.extra_area);
  }
}

void BM_SynthBaseline(benchmark::State& state) {
  run_once(state, nullptr, nullptr);
}
BENCHMARK(BM_SynthBaseline)->Unit(benchmark::kMicrosecond);

void BM_SynthTraceDisabled(benchmark::State& state) {
  TraceRecorder rec;  // attached but disabled: the always-compiled-in path
  run_once(state, &rec, nullptr);
}
BENCHMARK(BM_SynthTraceDisabled)->Unit(benchmark::kMicrosecond);

void BM_SynthTraceEnabled(benchmark::State& state) {
  TraceRecorder rec;
  rec.set_enabled(true);
  run_once(state, &rec, nullptr);
  state.counters["spans"] = static_cast<double>(rec.event_count());
}
BENCHMARK(BM_SynthTraceEnabled)->Unit(benchmark::kMicrosecond);

void BM_SynthEventsCounters(benchmark::State& state) {
  MetricsRegistry metrics;
  AlgorithmEvents events(&metrics, /*keep_events=*/false);
  run_once(state, nullptr, &events);
}
BENCHMARK(BM_SynthEventsCounters)->Unit(benchmark::kMicrosecond);

void BM_SynthEventsKept(benchmark::State& state) {
  AlgorithmEvents events(nullptr, /*keep_events=*/true);
  run_once(state, nullptr, &events);
}
BENCHMARK(BM_SynthEventsKept)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Profiler tier.  Same generator parameters as bench_scaling's large tier
// so the profiled workload is the one the CI perf gate already tracks.

RandomDfgOptions profiled_opts(int ops) {
  RandomDfgOptions o;
  o.seed = 424242;
  o.ops_per_step = 8;
  o.num_steps = ops / o.ops_per_step;
  o.num_inputs = 12;
  o.reuse_probability = 0.9;
  o.chain_probability = 0.3;
  return o;
}

double synth_ms(const RandomDfg& rd, const std::vector<ModuleProto>& protos) {
  SynthesisOptions so;
  so.binder = BinderKind::BistAware;
  so.lifetime.hold_outputs_to_end = false;
  const auto t0 = std::chrono::steady_clock::now();
  const SynthesisResult res = Synthesizer(so).run(rd.dfg, rd.schedule, protos);
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(res.bist.extra_area);
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Profiler off vs armed at 199 Hz over the same 2k-op synthesis; the two
/// rows land in BENCH_obs.json for tools/check_bench.py, the measured
/// overhead rides along on the armed row.
void run_profiler_overhead(benchjson::BenchJson& bj) {
  constexpr int kOps = 2000;
  constexpr int kReps = 9;
  const RandomDfg rd = make_random_dfg(profiled_opts(kOps));
  const auto protos = minimal_module_spec(rd.dfg, rd.schedule);

  (void)synth_ms(rd, protos);  // warm caches/allocator before either arm
  std::vector<double> off_ms;
  for (int r = 0; r < kReps; ++r) off_ms.push_back(synth_ms(rd, protos));

  obs::Profiler::attach_current_thread();
  obs::Profiler::instance().start({});  // 199 Hz
  std::vector<double> on_ms;
  for (int r = 0; r < kReps; ++r) on_ms.push_back(synth_ms(rd, protos));
  obs::Profiler::instance().stop();
  const obs::ProfileReport rep = obs::Profiler::instance().collect();

  auto p50 = [](std::vector<double> v) {
    return benchjson::percentile((std::sort(v.begin(), v.end()), v), 0.50);
  };
  const double off = p50(off_ms);
  const double on = p50(on_ms);
  const double overhead_pct = off > 0 ? 100.0 * (on - off) / off : 0.0;
  std::printf("profiler overhead: off %.1f ms, 199 Hz %.1f ms (%+.1f%%), "
              "%llu samples\n",
              off, on, overhead_pct,
              static_cast<unsigned long long>(rep.samples));

  bj.add("synth_2000_profiler_off", "2k ops, profiler off",
         std::move(off_ms));
  bj.add("synth_2000_profiler_199hz", "2k ops, profiler 199 Hz",
         std::move(on_ms),
         Json::object()
             .set("overhead_pct", Json::number(overhead_pct))
             .set("profile_samples", Json::number(static_cast<std::int64_t>(
                                         rep.samples)))
             .set("profile_dropped", Json::number(static_cast<std::int64_t>(
                                         rep.dropped))));
}

/// One N-op synthesis under the profiler; exports the span-attributed
/// profile (PROFILE_obs.folded / PROFILE_obs.json) and prints the per-pass
/// sample shares.
int run_profile_capture(int ops) {
  const RandomDfg rd = make_random_dfg(profiled_opts(ops));
  const auto protos = minimal_module_spec(rd.dfg, rd.schedule);
  std::cerr << "profile capture: " << ops << " ops, "
            << rd.dfg.num_vars() << " vars, 199 Hz" << std::endl;

  obs::Profiler::attach_current_thread();
  obs::Profiler::instance().start({});
  const double ms = synth_ms(rd, protos);
  obs::Profiler::instance().stop();
  const obs::ProfileReport rep = obs::Profiler::instance().collect();

  std::ofstream folded("PROFILE_obs.folded");
  rep.write_folded(folded);
  std::ofstream json("PROFILE_obs.json");
  json << rep.to_json().dump() << "\n";

  std::printf("%d ops in %.1f ms, %llu samples (%llu dropped)\n", ops, ms,
              static_cast<unsigned long long>(rep.samples),
              static_cast<unsigned long long>(rep.dropped));
  std::printf("%-16s %10s %8s %10s %8s\n", "span", "self", "self%", "total",
              "total%");
  const double denom = rep.samples > 0 ? static_cast<double>(rep.samples) : 1;
  for (const auto& s : rep.spans) {
    std::printf("%-16s %10llu %7.1f%% %10llu %7.1f%%\n", s.name.c_str(),
                static_cast<unsigned long long>(s.self_samples),
                100.0 * static_cast<double>(s.self_samples) / denom,
                static_cast<unsigned long long>(s.total_samples),
                100.0 * static_cast<double>(s.total_samples) / denom);
  }
  std::printf("wrote PROFILE_obs.folded, PROFILE_obs.json\n");
  return rep.samples > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool overhead_only = false;
  int profile_ops = 0;
  std::vector<char*> fwd;
  fwd.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--overhead-only") == 0) {
      overhead_only = true;
    } else if (std::strcmp(argv[i], "--profile-ops") == 0 && i + 1 < argc) {
      profile_ops = std::atoi(argv[++i]);
    } else {
      fwd.push_back(argv[i]);
    }
  }
  if (profile_ops > 0) return run_profile_capture(profile_ops);

  lbist::benchjson::BenchJson bj("obs");
  run_profiler_overhead(bj);
  bj.write();
  if (overhead_only) return 0;

  int fwd_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&fwd_argc, fwd.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
