// Gate-level validation study (ours): the paper assumes BIST quality is
// independent of the modules' gate-level implementation, and our area model
// assumes linear adders and quadratic multipliers.  This harness checks
// both against real ripple/array netlists:
//   * gate counts vs the area-model constants,
//   * internal stuck-at coverage under the allocated BIST configuration
//     (LFSR pair + MISR) vs the port-fault model,
//   * the correlated-TPG penalty at gate level.
//
// Timing benchmark: 64-way parallel gate fault simulation.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "bist/area_model.hpp"
#include "bist/fault_sim.hpp"
#include "core/compare.hpp"
#include "gates/gate_fault_sim.hpp"
#include "gates/gate_selftest.hpp"
#include "support/table.hpp"

namespace {

using namespace lbist;

constexpr int kWidth = 8;

void print_gate_study() {
  TextTable t({"module", "gates", "area model", "port-fault cov %",
               "gate-fault cov %", "gate cov, 1 TPG %"});
  t.set_title(
      "Gate-level validation (width 8, 255 patterns; area model at width "
      "8)");
  AreaModel model;
  model.bit_width = kWidth;

  const std::pair<const char*, OpKind> units[] = {
      {"adder", OpKind::Add},       {"subtractor", OpKind::Sub},
      {"multiplier", OpKind::Mul},  {"and", OpKind::And},
      {"xor", OpKind::Xor},         {"comparator <", OpKind::Lt},
  };
  for (const auto& [label, kind] : units) {
    ModuleNetlist m = build_module(kind, kWidth);
    const auto port = simulate_module_bist(ModuleProto{{kind}}, kWidth, 255);
    const auto gate = simulate_gate_bist(m, 255);
    const auto corr = simulate_gate_bist(m, 255, /*independent=*/false);
    t.add_row({label, std::to_string(m.netlist.gate_count()),
               fmt_double(model.module_area(ModuleProto{{kind}}), 0),
               fmt_double(100.0 * port.coverage(), 1),
               fmt_double(100.0 * gate.coverage(), 1),
               fmt_double(100.0 * corr.coverage(), 1)});
  }
  std::cout << t;
  std::cout << "(gate counts confirm the model's shape: linear adders, "
               "quadratic multipliers)\n"
            << std::endl;
}

void print_plan_gate_coverage() {
  TextTable t({"DFG", "gate faults", "detected", "coverage %",
               "port-model coverage %"});
  t.set_title(
      "Allocated plans graded at gate level (chip TPG seeds, 250 patterns)");
  for (const auto& row : compare_paper_benchmarks()) {
    auto gate = run_gate_self_test(row.testable.datapath, row.testable.bist,
                                   250, kWidth);
    // Port model for comparison.
    int port_total = 0, port_detected = 0;
    for (const auto& mod : row.testable.datapath.modules) {
      auto r = simulate_module_bist(mod.proto, kWidth, 250);
      port_total += r.total;
      port_detected += r.detected;
    }
    t.add_row({row.name, std::to_string(gate.faults_injected),
               std::to_string(gate.faults_detected),
               fmt_double(100.0 * gate.coverage(), 1),
               fmt_double(100.0 * port_detected /
                              std::max(port_total, 1),
                          1)});
  }
  std::cout << t << std::endl;
}

void BM_GateFaultSim(benchmark::State& state) {
  const OpKind kinds[] = {OpKind::Add, OpKind::Mul};
  ModuleNetlist m = build_module(kinds[state.range(0)], 8);
  for (auto _ : state) {
    auto r = simulate_gate_bist(m, 255);
    benchmark::DoNotOptimize(r.detected);
  }
  state.SetLabel(state.range(0) == 0 ? "add8" : "mul8");
}
BENCHMARK(BM_GateFaultSim)->DenseRange(0, 1);

void BM_ParallelEval(benchmark::State& state) {
  ModuleNetlist m = build_multiplier(8);
  std::vector<std::uint64_t> a(8, 0x123456789ABCDEFull);
  std::vector<std::uint64_t> b(8, 0xFEDCBA987654321ull);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.eval(a, b));
  }
}
BENCHMARK(BM_ParallelEval);

}  // namespace

int main(int argc, char** argv) {
  print_gate_study();
  print_plan_gate_coverage();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
