// Transparency study (extension; the I-path concept the paper builds on
// also admits paths *through* modules in identity modes — Abadir/Breuer):
// how much BIST area the extended embedding space saves on the paper
// benchmarks and on random designs, and what it costs in test sessions.
//
// Timing benchmark: exact allocation with and without transparency.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bist/allocator.hpp"
#include "bist/sessions.hpp"
#include "core/compare.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random_dfg.hpp"
#include "graph/conflict.hpp"
#include "interconnect/build_datapath.hpp"
#include "support/table.hpp"

namespace {

using namespace lbist;

void print_transparency_table() {
  TextTable t({"design", "extra (simple)", "extra (+transparent)",
               "saving", "sessions (simple)", "sessions (+transp.)"});
  t.set_title(
      "BIST extra area with simple vs transparency-extended I-paths");

  auto add_row = [&](const std::string& name, const Datapath& dp) {
    BistAllocator plain{AreaModel{}};
    BistAllocator ext{AreaModel{}};
    ext.use_transparent_paths = true;
    auto s0 = plain.solve(dp);
    auto s1 = ext.solve(dp);
    t.add_row({name, fmt_double(s0.extra_area, 0),
               fmt_double(s1.extra_area, 0) + (s1.exact ? "" : " (greedy)"),
               fmt_double(s0.extra_area - s1.extra_area, 0),
               std::to_string(schedule_test_sessions(dp, s0).num_sessions),
               std::to_string(schedule_test_sessions(dp, s1).num_sessions)});
  };

  for (const auto& row : compare_paper_benchmarks()) {
    add_row(row.name, row.testable.datapath);
  }
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RandomDfgOptions opts;
    opts.seed = seed;
    auto rd = make_random_dfg(opts);
    auto lt = compute_lifetimes(rd.dfg, rd.schedule);
    auto cg = build_conflict_graph(rd.dfg, lt);
    auto mb = ModuleBinding::bind(rd.dfg, rd.schedule,
                                  minimal_module_spec(rd.dfg, rd.schedule));
    auto rb = bind_registers_bist_aware(rd.dfg, cg, mb);
    add_row("random s" + std::to_string(seed),
            build_datapath(rd.dfg, mb, rb));
  }
  std::cout << t << std::endl;
}

void BM_AllocatorSimple(benchmark::State& state) {
  auto row = compare_benchmark(make_tseng1());
  BistAllocator alloc{AreaModel{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.solve(row.testable.datapath).extra_area);
  }
}
BENCHMARK(BM_AllocatorSimple);

void BM_AllocatorTransparent(benchmark::State& state) {
  auto row = compare_benchmark(make_tseng1());
  BistAllocator alloc{AreaModel{}};
  alloc.use_transparent_paths = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.solve(row.testable.datapath).extra_area);
  }
}
BENCHMARK(BM_AllocatorTransparent);

}  // namespace

int main(int argc, char** argv) {
  print_transparency_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
