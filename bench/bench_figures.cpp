// Reproduces the paper's illustrative figures as text/DOT:
//   Fig. 1 — a generic configuration with simple I-paths (hand-built
//            netlist; the I-path inventory is printed),
//   Fig. 2 — the ex1 scheduled DFG (text + DOT),
//   Fig. 3 — sharing of I-paths: a common-head TPG and common-tail SA
//            across two modules,
//   Fig. 4 — the ex1 variable conflict graph annotated with SD and MCS,
//   Fig. 5 — the testable (a) and traditional (b) ex1 data paths with
//            their minimal-area BIST solutions.
//
// Timing benchmark: conflict-graph construction + structured PVES on ex1.

#include <benchmark/benchmark.h>

#include <iostream>

#include "binding/sharing.hpp"
#include "core/compare.hpp"
#include "dfg/benchmarks.hpp"
#include "graph/chordal.hpp"
#include "graph/conflict.hpp"
#include "rtl/ipath.hpp"
#include "support/table.hpp"

namespace {

using namespace lbist;

const char* port_name(IPathPort p) {
  switch (p) {
    case IPathPort::Left: return "L";
    case IPathPort::Right: return "R";
    case IPathPort::Out: return "out";
  }
  return "?";
}

void print_fig1_and_3() {
  // The Fig. 1 shape: R1,R2 -> m1 -> M1.L, R3 -> M1.R.  Extended with a
  // second module as in Fig. 3 so I-path sharing appears.
  Datapath dp;
  dp.name = "fig1";
  dp.num_allocated = 4;
  for (int i = 1; i <= 4; ++i) {
    DpRegister r;
    r.name = "R" + std::to_string(i);
    dp.registers.push_back(r);
  }
  DpModule m1;
  m1.name = "M1(+)";
  m1.proto = ModuleProto{{OpKind::Add}};
  m1.left_sources = {0, 1};
  m1.right_sources = {2};
  m1.dest_registers = {3};
  DpModule m2;
  m2.name = "M2(*)";
  m2.proto = ModuleProto{{OpKind::Mul}};
  m2.left_sources = {0};
  m2.right_sources = {2};
  m2.dest_registers = {3};
  dp.modules = {m1, m2};
  dp.registers[3].source_modules = {0, 1};

  std::cout << "--- Fig. 1 / Fig. 3: simple I-paths and sharing ---\n";
  std::cout << dp.describe();
  for (const auto& p : simple_ipaths(dp)) {
    std::cout << "  I-path: " << dp.registers[p.reg].name << " <-> "
              << dp.modules[p.module].name << "." << port_name(p.port)
              << "\n";
  }
  std::cout << "  shared head: R1 is a TPG candidate for both modules; "
               "shared tail: R4 is an SA candidate for both (Fig. 3).\n\n";
}

void print_fig2_and_4() {
  Benchmark bench = make_ex1();
  const Dfg& dfg = bench.design.dfg;
  std::cout << "--- Fig. 2: scheduled DFG (ex1) ---\n"
            << print_dfg(dfg, &*bench.design.schedule) << "\n"
            << dfg.to_dot() << "\n";

  auto lt = compute_lifetimes(dfg, *bench.design.schedule);
  auto cg = build_conflict_graph(dfg, lt);
  auto mb = ModuleBinding::bind(dfg, *bench.design.schedule,
                                parse_module_spec(bench.module_spec));
  SharingAnalysis sa(dfg, mb);
  auto peo = perfect_elimination_order(cg.graph);
  auto mcs = max_clique_through_vertex(cg.graph, *peo);

  std::cout << "--- Fig. 4: variable conflict graph with (SD, MCS) ---\n";
  TextTable t({"variable", "SD", "MCS", "conflicts with"});
  for (std::size_t v = 0; v < cg.vars.size(); ++v) {
    std::string adj;
    for (std::size_t u : cg.graph.neighbors(v)) {
      adj += (adj.empty() ? "" : ",") + dfg.var(cg.vars[u]).name;
    }
    t.add_row({dfg.var(cg.vars[v]).name, std::to_string(sa.sd(cg.vars[v])),
               std::to_string(mcs[v]), adj});
  }
  std::cout << t << "\n";
}

void print_fig5() {
  Benchmark bench = make_ex1();
  ComparisonRow row = compare_benchmark(bench);
  std::cout << "--- Fig. 5(a): data path from BIST-aware binding ---\n"
            << row.testable.describe(bench.design.dfg)
            << row.testable.datapath.to_dot() << "\n";
  std::cout << "--- Fig. 5(b): data path from traditional binding ---\n"
            << row.traditional.describe(bench.design.dfg)
            << row.traditional.datapath.to_dot() << "\n";
}

void BM_ConflictGraphAndPves(benchmark::State& state) {
  Benchmark bench = make_ex1();
  auto lt = compute_lifetimes(bench.design.dfg, *bench.design.schedule);
  for (auto _ : state) {
    auto cg = build_conflict_graph(bench.design.dfg, lt);
    auto peo = perfect_elimination_order(cg.graph);
    benchmark::DoNotOptimize(peo->size());
  }
}
BENCHMARK(BM_ConflictGraphAndPves);

}  // namespace

int main(int argc, char** argv) {
  print_fig1_and_3();
  print_fig2_and_4();
  print_fig5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
