// Scaling study (ours): BIST overhead reduction and runtime as the design
// grows — random scheduled DFGs from ~10 to ~150 variables, plus FIR
// filters of increasing tap count scheduled with the list scheduler, plus a
// large tier of 1k–100k-op random DFGs that exercises the bitset conflict
// graphs and the incremental-ΔSD binder at scale.
//
// The large tier is the CI perf gate: it emits one row per size into
// BENCH_scaling.json (bench/bench_json.hpp) which tools/check_bench.py
// compares against bench/baselines/BENCH_scaling.json.
//
// Flags (ours, stripped before google-benchmark sees argv):
//   --scaling-only   run only the large tier + JSON artifact (CI gate mode)
//   --xl             extend the large tier to 20k/50k/100k ops
//
// Timing benchmarks: the full testable pipeline vs design size.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random_dfg.hpp"
#include "sched/list_sched.hpp"
#include "support/table.hpp"

namespace {

using namespace lbist;

RandomDfgOptions size_opts(int steps, int width, std::uint64_t seed) {
  RandomDfgOptions o;
  o.seed = seed;
  o.num_steps = steps;
  o.ops_per_step = width;
  o.num_inputs = width + 2;
  o.kinds = {OpKind::Add, OpKind::Mul, OpKind::And, OpKind::Sub};
  return o;
}

void print_scaling() {
  TextTable t({"design", "#vars", "#regs", "#mux", "trad %BIST",
               "ours %BIST", "reduction %", "ours runtime ms"});
  t.set_title("Scaling — overhead reduction vs design size");

  auto run_pair = [&](const std::string& label, const Dfg& dfg,
                      const Schedule& sched) {
    auto protos = minimal_module_spec(dfg, sched);
    SynthesisOptions trad;
    trad.binder = BinderKind::Traditional;
    auto rt = Synthesizer(trad).run(dfg, sched, protos);

    SynthesisOptions ours;
    ours.binder = BinderKind::BistAware;
    const auto t0 = std::chrono::steady_clock::now();
    auto ro = Synthesizer(ours).run(dfg, sched, protos);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    const double red =
        rt.overhead_percent > 0
            ? 100.0 * (rt.overhead_percent - ro.overhead_percent) /
                  rt.overhead_percent
            : 0.0;
    t.add_row({label, std::to_string(dfg.num_vars()),
               std::to_string(ro.num_registers()),
               std::to_string(ro.num_mux()),
               fmt_double(rt.overhead_percent),
               fmt_double(ro.overhead_percent), fmt_double(red),
               fmt_double(ms, 1)});
  };

  for (auto [steps, width] : {std::pair{4, 2}, {6, 3}, {8, 4}, {10, 5},
                              {12, 6}}) {
    auto rd = make_random_dfg(size_opts(steps, width, 7));
    run_pair("random " + std::to_string(steps) + "x" + std::to_string(width),
             rd.dfg, rd.schedule);
  }
  for (int taps : {4, 8, 16, 32}) {
    Dfg fir = make_fir(taps);
    Schedule sched =
        list_schedule(fir, {{OpKind::Mul, 2}, {OpKind::Add, 2}});
    run_pair("fir" + std::to_string(taps), fir, sched);
  }
  std::cout << t << std::endl;
}

// ---------------------------------------------------------------------------
// Large tier: full BIST-aware synthesis of 1k–100k-op random DFGs.
//
// Outputs are not held to the end of the schedule — with thousands of sinks
// a hold-to-end policy manufactures one giant conflict clique that measures
// the lifetime policy, not the binder.  The generator parameters (high
// reuse, moderate chaining) keep register pressure realistic instead.

RandomDfgOptions large_opts(int ops) {
  RandomDfgOptions o;
  o.seed = 424242;
  o.ops_per_step = 8;
  o.num_steps = ops / o.ops_per_step;
  o.num_inputs = 12;
  o.reuse_probability = 0.9;
  o.chain_probability = 0.3;
  return o;
}

void run_large_tier(const std::vector<int>& sizes,
                    benchjson::BenchJson& bj) {
  TextTable t({"ops", "#vars", "#regs", "#mux", "%BIST", "wall ms"});
  t.set_title("Large tier — full BIST-aware synthesis (CI perf gate)");

  for (int ops : sizes) {
    const RandomDfg rd = make_random_dfg(large_opts(ops));
    const auto protos = minimal_module_spec(rd.dfg, rd.schedule);
    SynthesisOptions so;
    so.binder = BinderKind::BistAware;
    so.lifetime.hold_outputs_to_end = false;

    const auto t0 = std::chrono::steady_clock::now();
    Synthesizer synth(so);
    const SynthesisResult res = synth.run(rd.dfg, rd.schedule, protos);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    t.add_row({std::to_string(ops), std::to_string(rd.dfg.num_vars()),
               std::to_string(res.num_registers()),
               std::to_string(res.num_mux()),
               fmt_double(res.overhead_percent), fmt_double(ms, 1)});
    // Progress to stderr: CI logs show where a slow run is, row by row.
    std::cerr << "large tier: " << ops << " ops -> " << fmt_double(ms, 1)
              << " ms (" << res.num_registers() << " regs)" << std::endl;
    bj.add("random_" + std::to_string(ops),
           std::to_string(ops) + " ops, seed 424242", {ms},
           Json::object()
               .set("ops", Json::number(static_cast<std::int64_t>(ops)))
               .set("vars", Json::number(static_cast<std::int64_t>(
                                rd.dfg.num_vars())))
               .set("regs", Json::number(static_cast<std::int64_t>(
                                res.num_registers())))
               .set("mux", Json::number(
                               static_cast<std::int64_t>(res.num_mux())))
               .set("overhead_pct", Json::number(res.overhead_percent))
               .set("wall_ms", Json::number(ms)));
  }
  std::cout << t << std::endl;
}

void BM_PipelineVsSize(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  auto rd = make_random_dfg(size_opts(steps, 4, 7));
  auto protos = minimal_module_spec(rd.dfg, rd.schedule);
  SynthesisOptions opts;
  opts.binder = BinderKind::BistAware;
  Synthesizer synth(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth.run(rd.dfg, rd.schedule, protos).overhead_percent);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PipelineVsSize)->Arg(4)->Arg(8)->Arg(12)->Complexity();

void BM_FirPipeline(benchmark::State& state) {
  Dfg fir = make_fir(static_cast<int>(state.range(0)));
  Schedule sched = list_schedule(fir, {{OpKind::Mul, 2}, {OpKind::Add, 2}});
  auto protos = minimal_module_spec(fir, sched);
  SynthesisOptions opts;
  opts.binder = BinderKind::BistAware;
  Synthesizer synth(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth.run(fir, sched, protos).overhead_percent);
  }
}
BENCHMARK(BM_FirPipeline)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  bool scaling_only = false;
  bool xl = false;
  std::vector<char*> fwd;
  fwd.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scaling-only") == 0) {
      scaling_only = true;
    } else if (std::strcmp(argv[i], "--xl") == 0) {
      xl = true;
    } else {
      fwd.push_back(argv[i]);
    }
  }

  std::vector<int> sizes = {1000, 2000, 5000, 10000};
  if (xl) {
    sizes.push_back(20000);
    sizes.push_back(50000);
    sizes.push_back(100000);
  }

  lbist::benchjson::BenchJson bj("scaling");
  if (!scaling_only) print_scaling();
  run_large_tier(sizes, bj);
  bj.write();
  if (scaling_only) return 0;

  int fwd_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&fwd_argc, fwd.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
