// Scaling study (ours): BIST overhead reduction and runtime as the design
// grows — random scheduled DFGs from ~10 to ~150 variables, plus FIR
// filters of increasing tap count scheduled with the list scheduler.
//
// Timing benchmarks: the full testable pipeline vs design size.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random_dfg.hpp"
#include "sched/list_sched.hpp"
#include "support/table.hpp"

namespace {

using namespace lbist;

RandomDfgOptions size_opts(int steps, int width, std::uint64_t seed) {
  RandomDfgOptions o;
  o.seed = seed;
  o.num_steps = steps;
  o.ops_per_step = width;
  o.num_inputs = width + 2;
  o.kinds = {OpKind::Add, OpKind::Mul, OpKind::And, OpKind::Sub};
  return o;
}

void print_scaling() {
  TextTable t({"design", "#vars", "#regs", "#mux", "trad %BIST",
               "ours %BIST", "reduction %", "ours runtime ms"});
  t.set_title("Scaling — overhead reduction vs design size");

  auto run_pair = [&](const std::string& label, const Dfg& dfg,
                      const Schedule& sched) {
    auto protos = minimal_module_spec(dfg, sched);
    SynthesisOptions trad;
    trad.binder = BinderKind::Traditional;
    auto rt = Synthesizer(trad).run(dfg, sched, protos);

    SynthesisOptions ours;
    ours.binder = BinderKind::BistAware;
    const auto t0 = std::chrono::steady_clock::now();
    auto ro = Synthesizer(ours).run(dfg, sched, protos);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    const double red =
        rt.overhead_percent > 0
            ? 100.0 * (rt.overhead_percent - ro.overhead_percent) /
                  rt.overhead_percent
            : 0.0;
    t.add_row({label, std::to_string(dfg.num_vars()),
               std::to_string(ro.num_registers()),
               std::to_string(ro.num_mux()),
               fmt_double(rt.overhead_percent),
               fmt_double(ro.overhead_percent), fmt_double(red),
               fmt_double(ms, 1)});
  };

  for (auto [steps, width] : {std::pair{4, 2}, {6, 3}, {8, 4}, {10, 5},
                              {12, 6}}) {
    auto rd = make_random_dfg(size_opts(steps, width, 7));
    run_pair("random " + std::to_string(steps) + "x" + std::to_string(width),
             rd.dfg, rd.schedule);
  }
  for (int taps : {4, 8, 16, 32}) {
    Dfg fir = make_fir(taps);
    Schedule sched =
        list_schedule(fir, {{OpKind::Mul, 2}, {OpKind::Add, 2}});
    run_pair("fir" + std::to_string(taps), fir, sched);
  }
  std::cout << t << std::endl;
}

void BM_PipelineVsSize(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  auto rd = make_random_dfg(size_opts(steps, 4, 7));
  auto protos = minimal_module_spec(rd.dfg, rd.schedule);
  SynthesisOptions opts;
  opts.binder = BinderKind::BistAware;
  Synthesizer synth(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth.run(rd.dfg, rd.schedule, protos).overhead_percent);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PipelineVsSize)->Arg(4)->Arg(8)->Arg(12)->Complexity();

void BM_FirPipeline(benchmark::State& state) {
  Dfg fir = make_fir(static_cast<int>(state.range(0)));
  Schedule sched = list_schedule(fir, {{OpKind::Mul, 2}, {OpKind::Add, 2}});
  auto protos = minimal_module_spec(fir, sched);
  SynthesisOptions opts;
  opts.binder = BinderKind::BistAware;
  Synthesizer synth(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth.run(fir, sched, protos).overhead_percent);
  }
}
BENCHMARK(BM_FirPipeline)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  print_scaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
