// Batch-synthesis service throughput: a 100-job manifest (built-in
// benchmarks x module specs x binders, with deliberate duplicates) run at
// -j 1/2/4/8, cache cold vs warm.  Reports jobs/sec via the counters, so
// the batch speedup and the cache's effect are directly comparable.
//
// On a single-core host the -j curves collapse to -j1 (the pool still
// load-balances, there is just no parallel hardware); the warm-cache rows
// show the cache win regardless.

#include <benchmark/benchmark.h>

#include <chrono>
#include <sstream>
#include <string>

#include "bench_json.hpp"
#include "obs/events.hpp"
#include "obs/trace.hpp"
#include "service/batch.hpp"
#include "service/metrics.hpp"

namespace {

using namespace lbist;

/// 100 jobs with many repeats: 5 benchmarks x 2 binders x 2 widths = 20
/// distinct synthesis requests, each appearing 5 times.
std::string hundred_job_manifest() {
  std::string m;
  for (int rep = 0; rep < 5; ++rep) {
    for (const char* bench : {"ex1", "ex2", "tseng", "tseng2", "paulin"}) {
      for (const char* binder : {"trad", "bist"}) {
        for (int width : {4, 8}) {
          m += std::string("{\"bench\": \"") + bench + "\", \"binder\": \"" +
               binder + "\", \"width\": " + std::to_string(width) + "}\n";
        }
      }
    }
  }
  return m;
}

void BM_BatchColdCache(benchmark::State& state) {
  const auto entries = parse_manifest(hundred_job_manifest());
  for (auto _ : state) {
    BatchOptions opts;
    opts.jobs = static_cast<int>(state.range(0));
    std::ostringstream out;
    const auto summary = run_batch(entries, opts, out);
    benchmark::DoNotOptimize(summary.ok);
  }
  state.counters["jobs/sec"] = benchmark::Counter(
      static_cast<double>(entries.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchColdCache)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_BatchWarmCache(benchmark::State& state) {
  const auto entries = parse_manifest(hundred_job_manifest());
  SynthesisCache cache(256);
  {
    // Pre-warm outside the timed region.
    BatchOptions opts;
    opts.jobs = static_cast<int>(state.range(0));
    opts.cache = &cache;
    std::ostringstream out;
    run_batch(entries, opts, out);
  }
  for (auto _ : state) {
    BatchOptions opts;
    opts.jobs = static_cast<int>(state.range(0));
    opts.cache = &cache;
    std::ostringstream out;
    const auto summary = run_batch(entries, opts, out);
    benchmark::DoNotOptimize(summary.cache_hits);
  }
  state.counters["jobs/sec"] = benchmark::Counter(
      static_cast<double>(entries.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchWarmCache)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Tracing overhead on the same cold-cache manifest (compare against
// BM_BatchColdCache at the same -j): "disabled" is a recorder that is
// attached but off — the state every un-traced run pays for — and must
// stay within noise; "enabled" records per-job + per-phase spans and a
// counters-only decision-event sink (docs/observability.md).
void BM_BatchTraceDisabled(benchmark::State& state) {
  const auto entries = parse_manifest(hundred_job_manifest());
  TraceRecorder rec;  // not enabled
  for (auto _ : state) {
    BatchOptions opts;
    opts.jobs = static_cast<int>(state.range(0));
    opts.trace = &rec;
    std::ostringstream out;
    const auto summary = run_batch(entries, opts, out);
    benchmark::DoNotOptimize(summary.ok);
  }
  state.counters["jobs/sec"] = benchmark::Counter(
      static_cast<double>(entries.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchTraceDisabled)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_BatchTraceEnabled(benchmark::State& state) {
  const auto entries = parse_manifest(hundred_job_manifest());
  for (auto _ : state) {
    TraceRecorder rec;
    rec.set_enabled(true);
    MetricsRegistry metrics;
    AlgorithmEvents events(&metrics, /*keep_events=*/false);
    BatchOptions opts;
    opts.jobs = static_cast<int>(state.range(0));
    opts.trace = &rec;
    opts.events = &events;
    std::ostringstream out;
    const auto summary = run_batch(entries, opts, out);
    benchmark::DoNotOptimize(summary.ok);
    benchmark::DoNotOptimize(rec.event_count());
  }
  state.counters["jobs/sec"] = benchmark::Counter(
      static_cast<double>(entries.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchTraceEnabled)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Sampled repetitions of the manifest for the BENCH_service.json
/// artifact: wall-time per whole-manifest run (the percentile basis) plus
/// the jobs/sec the median run sustained.
void write_artifact() {
  using Clock = std::chrono::steady_clock;
  constexpr int kReps = 5;
  const auto entries = parse_manifest(hundred_job_manifest());
  benchjson::BenchJson artifact("service");
  for (const int jobs : {1, 4}) {
    for (const bool warm : {false, true}) {
      SynthesisCache cache(256);
      if (warm) {
        BatchOptions opts;
        opts.jobs = jobs;
        opts.cache = &cache;
        std::ostringstream out;
        run_batch(entries, opts, out);
      }
      std::vector<double> samples_ms;
      for (int rep = 0; rep < kReps; ++rep) {
        BatchOptions opts;
        opts.jobs = jobs;
        if (warm) opts.cache = &cache;
        std::ostringstream out;
        const Clock::time_point t0 = Clock::now();
        const auto summary = run_batch(entries, opts, out);
        samples_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count());
        benchmark::DoNotOptimize(summary.ok);
      }
      std::sort(samples_ms.begin(), samples_ms.end());
      const double median_ms = benchjson::percentile(samples_ms, 0.50);
      artifact.add(
          "batch_manifest",
          "-j" + std::to_string(jobs) + (warm ? " warm" : " cold"),
          samples_ms,
          Json::object().set(
              "jobs_per_sec",
              Json::number(static_cast<double>(entries.size()) * 1000.0 /
                           median_ms)));
    }
  }
  artifact.write();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_artifact();
  return 0;
}
