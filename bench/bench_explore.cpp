// Design-space exploration sweep (extension): area/testability tradeoffs
// across resource budgets and binder styles on the filter benchmarks —
// the "efficient exploration of the design space" the paper's introduction
// motivates, measured.
//
// Timing benchmark: one full sweep.

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/explorer.hpp"
#include "dfg/benchmarks.hpp"

namespace {

using namespace lbist;

void print_sweeps() {
  {
    Dfg fir = make_fir(8);
    std::vector<ResourceLimits> budgets = {
        {{OpKind::Mul, 1}, {OpKind::Add, 1}},
        {{OpKind::Mul, 2}, {OpKind::Add, 1}},
        {{OpKind::Mul, 2}, {OpKind::Add, 2}},
        {{OpKind::Mul, 4}, {OpKind::Add, 2}},
    };
    auto points = explore_resource_budgets(fir, budgets);
    std::cout << "FIR8 — resource-budget sweep\n"
              << describe_points(points) << "\n";
  }
  {
    Dfg biquad = make_biquad_cascade(2);
    std::vector<ResourceLimits> budgets = {
        {{OpKind::Mul, 1}, {OpKind::Add, 1}, {OpKind::Sub, 1}},
        {{OpKind::Mul, 2}, {OpKind::Add, 2}, {OpKind::Sub, 1}},
        {{OpKind::Mul, 5}, {OpKind::Add, 3}, {OpKind::Sub, 1}},
    };
    auto points = explore_resource_budgets(biquad, budgets);
    std::cout << "Biquad x2 — resource-budget sweep\n"
              << describe_points(points) << "\n";
  }
  {
    // Fixed schedule, alternative module assignments (the Tseng1 vs Tseng2
    // experiment generalized).
    auto bench = make_tseng1();
    auto points = explore_module_specs(
        bench.design.dfg, *bench.design.schedule,
        {"2+,1*,1-,1&,1|,1/", "1+,3[-*/&|]", "1+,1[-|*],1[&/]",
         "3[+-|],2[*&/]"});
    std::cout << "Tseng — module-assignment sweep\n"
              << describe_points(points) << "\n";
  }
}

void BM_ExploreFir(benchmark::State& state) {
  Dfg fir = make_fir(8);
  std::vector<ResourceLimits> budgets = {
      {{OpKind::Mul, 1}, {OpKind::Add, 1}},
      {{OpKind::Mul, 2}, {OpKind::Add, 2}},
  };
  for (auto _ : state) {
    auto points = explore_resource_budgets(fir, budgets);
    benchmark::DoNotOptimize(points.size());
  }
}
BENCHMARK(BM_ExploreFir);

}  // namespace

int main(int argc, char** argv) {
  print_sweeps();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
