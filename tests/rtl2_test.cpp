// Second RTL test batch: functional-controller Verilog emission, and
// end-to-end sanity of the new DSP kernels through the full pipeline.

#include <gtest/gtest.h>

#include <random>

#include "binding/bist_aware_binder.hpp"
#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "graph/conflict.hpp"
#include "interconnect/build_datapath.hpp"
#include "rtl/controller.hpp"
#include "rtl/simulate.hpp"
#include "rtl/verilog_controller.hpp"
#include "sched/list_sched.hpp"

namespace lbist {
namespace {

struct Built {
  Dfg dfg;
  Schedule sched;
  ModuleBinding mb;
  IdMap<VarId, LiveInterval> lt;
  RegisterBinding rb;
  Datapath dp;
  Controller ctl;

  explicit Built(Dfg d, ResourceLimits limits = {{OpKind::Mul, 2},
                                                 {OpKind::Add, 1}})
      : dfg(std::move(d)),
        sched(list_schedule(dfg, limits)),
        mb(ModuleBinding::bind(dfg, sched,
                               minimal_module_spec(dfg, sched))),
        lt(compute_lifetimes(dfg, sched)),
        rb(bind_registers_bist_aware(dfg, build_conflict_graph(dfg, lt),
                                     mb)),
        dp(build_datapath(dfg, mb, rb)),
        ctl(Controller::generate(dfg, sched, rb, dp, lt)) {}
};

TEST(ControllerVerilog, EmitsFsmWithEveryStep) {
  Built b(make_complex_mult());
  const std::string v = emit_controller_verilog(b.dp, b.ctl);
  EXPECT_NE(v.find("module cmult_ctrl ("), std::string::npos);
  EXPECT_NE(v.find("localparam LAST_STEP = " +
                   std::to_string(b.ctl.num_steps()) + ";"),
            std::string::npos);
  for (int s = 0; s <= b.ctl.num_steps(); ++s) {
    EXPECT_NE(v.find("16'd" + std::to_string(s) + ": begin"),
              std::string::npos)
        << "step " << s;
  }
  EXPECT_NE(v.find("busy <= 1'b1"), std::string::npos);
  EXPECT_NE(v.find("done <= 1'b1"), std::string::npos);
}

TEST(ControllerVerilog, DrivesEveryEnableSomewhere) {
  Built b(make_mat2x2(), {{OpKind::Mul, 2}, {OpKind::Add, 2}});
  const std::string v = emit_controller_verilog(b.dp, b.ctl);
  for (const auto& reg : b.dp.registers) {
    EXPECT_NE(v.find("en_" + reg.name + " = 1'b1;"), std::string::npos)
        << reg.name;
  }
}

TEST(Kernels, ComplexMultiplyComputesCorrectly) {
  Built b(make_complex_mult());
  // (3 + 4j) * (2 + 5j) = (6 - 20) + (15 + 8)j = -14 + 23j (mod 256).
  IdMap<VarId, std::uint32_t> inputs(b.dfg.num_vars(), 0);
  inputs[*b.dfg.find_var("ar")] = 3;
  inputs[*b.dfg.find_var("ai")] = 4;
  inputs[*b.dfg.find_var("br")] = 2;
  inputs[*b.dfg.find_var("bi")] = 5;
  auto sim = simulate_datapath(b.dfg, b.dp, b.ctl, inputs, 8);
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim.observed[*b.dfg.find_var("re")], (6u - 20u) & 0xFF);
  EXPECT_EQ(sim.observed[*b.dfg.find_var("im")], 23u);
}

TEST(Kernels, MatrixProductComputesCorrectly) {
  Built b(make_mat2x2(), {{OpKind::Mul, 2}, {OpKind::Add, 2}});
  IdMap<VarId, std::uint32_t> inputs(b.dfg.num_vars(), 0);
  const std::uint32_t a[2][2] = {{1, 2}, {3, 4}};
  const std::uint32_t m[2][2] = {{5, 6}, {7, 8}};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      inputs[*b.dfg.find_var("a" + std::to_string(i) + std::to_string(j))] =
          a[i][j];
      inputs[*b.dfg.find_var("b" + std::to_string(i) + std::to_string(j))] =
          m[i][j];
    }
  }
  auto sim = simulate_datapath(b.dfg, b.dp, b.ctl, inputs, 8);
  ASSERT_TRUE(sim.ok());
  const std::uint32_t expect[2][2] = {{19, 22}, {43, 50}};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      EXPECT_EQ(sim.observed[*b.dfg.find_var(
                    "c" + std::to_string(i) + std::to_string(j))],
                expect[i][j]);
    }
  }
}

TEST(Kernels, FullPipelineOnKernels) {
  for (Dfg dfg : {make_complex_mult(), make_mat2x2()}) {
    Schedule sched =
        list_schedule(dfg, {{OpKind::Mul, 2}, {OpKind::Add, 1}});
    SynthesisOptions opts;
    auto result = Synthesizer(opts).run(dfg, sched,
                                        minimal_module_spec(dfg, sched));
    EXPECT_GT(result.num_registers(), 0);
    EXPECT_TRUE(result.bist.untestable_modules.empty()) << dfg.name();
  }
}

}  // namespace
}  // namespace lbist
