// Batch-synthesis service tests: thread pool (including exception
// propagation under stress), LRU synthesis cache, manifest parsing, batch
// execution (error isolation, parallel/serial equivalence, cache hits),
// metrics summaries and the parallel explorer's determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "binding/module_spec.hpp"
#include "core/explorer.hpp"
#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "service/batch.hpp"
#include "service/cache.hpp"
#include "service/metrics.hpp"
#include "service/thread_pool.hpp"

namespace lbist {
namespace {

// ---- ThreadPool ----------------------------------------------------------

TEST(ThreadPool, RunsAllTasksAndReturnsResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ExceptionsPropagateThroughFuturesWithoutKillingWorkers) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 60; ++i) {
    futures.push_back(pool.submit([i, &completed]() -> int {
      if (i % 3 == 0) throw Error("task " + std::to_string(i) + " failed");
      completed.fetch_add(1);
      return i;
    }));
  }
  int ok = 0;
  int failed = 0;
  for (auto& f : futures) {
    try {
      f.get();
      ++ok;
    } catch (const Error&) {
      ++failed;
    }
  }
  EXPECT_EQ(ok, 40);
  EXPECT_EQ(failed, 20);
  EXPECT_EQ(completed.load(), 40);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      (void)pool.submit([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPool, ResolveJobsMapsNonPositiveToHardware) {
  EXPECT_EQ(ThreadPool::resolve_jobs(3), 3);
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1);
  EXPECT_GE(ThreadPool::resolve_jobs(-1), 1);
}

// ---- LruCache ------------------------------------------------------------

TEST(LruCache, HitMissAccounting) {
  LruCache<int> cache(4);
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", 1);
  auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.capacity, 4u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int> cache(2);
  cache.put("a", 1);
  cache.put("b", 2);
  EXPECT_TRUE(cache.get("a").has_value());  // refresh a; b is now LRU
  cache.put("c", 3);                        // evicts b
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST(LruCache, PutRefreshesExistingKeyWithoutGrowth) {
  LruCache<int> cache(2);
  cache.put("a", 1);
  cache.put("a", 2);
  EXPECT_EQ(cache.stats().size, 1u);
  EXPECT_EQ(*cache.get("a"), 2);
}

TEST(CacheKey, DistinguishesOptionsAndMatchesIdenticalRequests) {
  auto bench = make_ex1();
  const auto protos = parse_module_spec("1+,1*");
  SynthesisOptions a;
  const std::string k1 = synthesis_cache_key(
      bench.design.dfg, *bench.design.schedule, protos, a, 250);
  const std::string k2 = synthesis_cache_key(
      bench.design.dfg, *bench.design.schedule, protos, a, 250);
  EXPECT_EQ(k1, k2);
  SynthesisOptions b;
  b.binder = BinderKind::Traditional;
  EXPECT_NE(k1, synthesis_cache_key(bench.design.dfg, *bench.design.schedule,
                                    protos, b, 250));
  SynthesisOptions c;
  c.area.bit_width = 8;
  EXPECT_NE(k1, synthesis_cache_key(bench.design.dfg, *bench.design.schedule,
                                    protos, c, 250));
  EXPECT_NE(k1, synthesis_cache_key(bench.design.dfg, *bench.design.schedule,
                                    protos, a, 100));
}

// Many threads hammering one small cache with interleaved get/put across a
// hot key set larger than the capacity, so evictions, refreshes and misses
// all race.  Run under TSan in the sanitizer CI job; the stats invariants
// below hold regardless of interleaving.
TEST(LruCache, ConcurrentStressKeepsStatsConsistent) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  constexpr std::size_t kCapacity = 16;
  LruCache<int> cache(kCapacity);
  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> hits_seen{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int key_id = (t * 37 + i) % 48;  // 48 hot keys > 16 slots
        const std::string key = "k" + std::to_string(key_id);
        if (i % 3 == 0) {
          cache.put(key, key_id);
        } else {
          gets.fetch_add(1);
          if (auto v = cache.get(key)) {
            hits_seen.fetch_add(1);
            EXPECT_EQ(*v, key_id);  // values never cross keys
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, gets.load());
  EXPECT_EQ(stats.hits, hits_seen.load());
  EXPECT_LE(stats.size, kCapacity);
  EXPECT_EQ(stats.capacity, kCapacity);
  EXPECT_GT(stats.evictions, 0u);  // 48 keys through 16 slots must evict
}

// Same shape against the real SynthesisCache value type (Json results are
// deep structures, so this exercises copy-out under contention too).
TEST(LruCache, ConcurrentSynthesisCacheStress) {
  SynthesisCache cache(8);
  std::vector<std::thread> threads;
  threads.reserve(6);
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        const int key_id = (t + i) % 24;
        const std::string key = "req" + std::to_string(key_id);
        if (i % 2 == 0) {
          cache.put(key, Json::object()
                             .set("id", Json::number(key_id))
                             .set("payload", Json::string(
                                      std::string(64, 'x'))));
        } else if (auto v = cache.get(key)) {
          EXPECT_EQ(v->at("id").as_int(), key_id);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto stats = cache.stats();
  EXPECT_LE(stats.size, 8u);
  EXPECT_EQ(stats.capacity, 8u);
}

TEST(CacheKey, Fnv1a64IsStable) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
}

// ---- Metrics -------------------------------------------------------------

TEST(Metrics, HistogramSummaries) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("latency");
  for (int i = 1; i <= 100; ++i) h.record(i);
  const auto s = h.summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.p50, 50.5, 1.0);
  EXPECT_NEAR(s.p95, 95.05, 1.0);
  EXPECT_NEAR(s.p99, 99.01, 1.0);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
}

TEST(Metrics, RegistryJsonShape) {
  MetricsRegistry reg;
  reg.counter("jobs").inc(3);
  reg.gauge("depth").set(2.5);
  reg.histogram("ms").record(1.0);
  const Json j = reg.to_json();
  EXPECT_EQ(j.at("counters").at("jobs").as_int(), 3);
  EXPECT_DOUBLE_EQ(j.at("gauges").at("depth").as_number(), 2.5);
  EXPECT_EQ(j.at("histograms").at("ms").at("count").as_int(), 1);
  EXPECT_DOUBLE_EQ(j.at("histograms").at("ms").at("p99").as_number(), 1.0);
  // Round-trips through the parser.
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.at("counters").at("jobs").as_int(), 3);
}

TEST(Metrics, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  reg.counter("n").inc();
  reg.counter("n").inc();
  EXPECT_EQ(reg.counter("n").value(), 2u);
}

// ---- Manifest parsing ----------------------------------------------------

TEST(Manifest, ParsesJobsSkipsBlanksAndComments) {
  const auto entries = parse_manifest(
      "# comment\n"
      "\n"
      "{\"bench\": \"ex1\", \"binder\": \"trad\", \"width\": 8}\n"
      "{\"design\": \"foo.dfg\", \"modules\": \"1+,1*\", \"patterns\": 10}\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].ok());
  EXPECT_EQ(entries[0].line, 3);
  EXPECT_EQ(entries[0].job.bench, "ex1");
  EXPECT_EQ(entries[0].job.binder, "trad");
  EXPECT_EQ(entries[0].job.width, 8);
  EXPECT_TRUE(entries[1].ok());
  EXPECT_EQ(entries[1].job.design_path, "foo.dfg");
  EXPECT_EQ(entries[1].job.patterns, 10);
}

TEST(Manifest, MalformedLinesBecomeErrorEntriesWithLineNumbers) {
  const auto entries = parse_manifest(
      "{\"bench\": \"ex1\"}\n"
      "{oops\n"
      "{\"bench\": \"ex1\", \"design\": \"also.dfg\"}\n"
      "{\"bench\": \"ex1\", \"bogus\": 1}\n"
      "{\"width\": 4}\n");
  ASSERT_EQ(entries.size(), 5u);
  EXPECT_TRUE(entries[0].ok());
  EXPECT_FALSE(entries[1].ok());
  EXPECT_NE(entries[1].error.find("manifest line 2"), std::string::npos);
  EXPECT_FALSE(entries[2].ok());  // two design sources
  EXPECT_FALSE(entries[3].ok());  // unknown field
  EXPECT_NE(entries[3].error.find("bogus"), std::string::npos);
  EXPECT_FALSE(entries[4].ok());  // no design source
}

// ---- Batch execution -----------------------------------------------------

std::string duplicate_heavy_manifest() {
  std::string m;
  for (int rep = 0; rep < 3; ++rep) {
    for (const char* bench : {"ex1", "ex2", "tseng", "paulin"}) {
      for (const char* binder : {"trad", "bist"}) {
        m += std::string("{\"bench\": \"") + bench + "\", \"binder\": \"" +
             binder + "\"}\n";
      }
    }
  }
  return m;
}

std::vector<std::string> sorted_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(Batch, ParallelOutputMatchesSerialJobForJob) {
  const auto entries = parse_manifest(duplicate_heavy_manifest());
  ASSERT_EQ(entries.size(), 24u);

  std::ostringstream serial_out;
  BatchOptions serial;
  serial.jobs = 1;
  const auto s1 = run_batch(entries, serial, serial_out);

  std::ostringstream parallel_out;
  BatchOptions parallel;
  parallel.jobs = 4;
  const auto s4 = run_batch(entries, parallel, parallel_out);

  EXPECT_EQ(s1.ok, 24);
  EXPECT_EQ(s4.ok, 24);
  EXPECT_EQ(sorted_lines(serial_out.str()), sorted_lines(parallel_out.str()));
}

TEST(Batch, DuplicateJobsHitTheCache) {
  const auto entries = parse_manifest(duplicate_heavy_manifest());
  std::ostringstream out;
  BatchOptions opts;
  opts.jobs = 2;
  const auto summary = run_batch(entries, opts, out);
  EXPECT_EQ(summary.ok, 24);
  // 8 distinct (bench, binder) requests, 24 jobs: at least the serial
  // repeats hit (concurrent duplicate misses are allowed, so >= 8 hits is
  // the conservative bound with 24 - 8 = 16 the serial expectation).
  EXPECT_GE(summary.cache_hits, 8u);
  EXPECT_LE(summary.cache_misses, 16u);
}

TEST(Batch, BadJobsDoNotKillTheBatch) {
  const auto entries = parse_manifest(
      "{\"bench\": \"ex1\"}\n"
      "{\"bench\": \"doesnotexist\"}\n"
      "not json at all\n"
      "{\"design\": \"/nonexistent/path.dfg\"}\n"
      "{\"text\": \"dfg t\\ninput a b\\nop add1 + a b -> c @1\\noutput c\\n\"}"
      "\n");
  ASSERT_EQ(entries.size(), 5u);
  std::ostringstream out;
  BatchOptions opts;
  opts.jobs = 2;
  const auto summary = run_batch(entries, opts, out);
  EXPECT_EQ(summary.total, 5);
  EXPECT_EQ(summary.ok, 2);
  EXPECT_EQ(summary.errors, 3);
  const auto lines = sorted_lines(out.str());
  EXPECT_EQ(lines.size(), 5u);
  for (const auto& line : lines) {
    const Json j = Json::parse(line);
    EXPECT_TRUE(j.contains("job"));
    EXPECT_TRUE(j.at("status").as_string() == "ok" ||
                j.at("status").as_string() == "error");
    if (j.at("status").as_string() == "error") {
      EXPECT_FALSE(j.at("error").as_string().empty());
    } else {
      EXPECT_GT(j.at("result").at("registers").as_int(), 0);
    }
  }
}

TEST(Batch, UnscheduledInlineDesignsAreAutoScheduled) {
  const auto entries = parse_manifest(
      "{\"text\": \"dfg u\\ninput a b c\\nop m1 * a b -> t\\n"
      "op a1 + t c -> r\\noutput r\\n\"}\n");
  std::ostringstream out;
  const auto summary = run_batch(entries, BatchOptions{}, out);
  EXPECT_EQ(summary.ok, 1);
  const Json j = Json::parse(sorted_lines(out.str()).at(0));
  EXPECT_EQ(j.at("result").at("latency").as_int(), 2);
}

TEST(Batch, ExternalCacheStaysWarmAcrossBatches) {
  const auto entries = parse_manifest("{\"bench\": \"ex1\"}\n");
  SynthesisCache cache(16);
  BatchOptions opts;
  opts.cache = &cache;
  std::ostringstream out1;
  const auto cold = run_batch(entries, opts, out1);
  EXPECT_EQ(cold.cache_hits, 0u);
  std::ostringstream out2;
  const auto warm = run_batch(entries, opts, out2);
  EXPECT_EQ(warm.cache_hits, 1u);
  EXPECT_EQ(out1.str(), out2.str());
}

// ---- Parallel explorer determinism ---------------------------------------

void expect_points_equal(const std::vector<DesignPoint>& a,
                         const std::vector<DesignPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label) << "point " << i;
    EXPECT_EQ(a[i].binder, b[i].binder) << "point " << i;
    EXPECT_EQ(a[i].latency, b[i].latency) << "point " << i;
    EXPECT_EQ(a[i].num_registers, b[i].num_registers) << "point " << i;
    EXPECT_EQ(a[i].num_mux, b[i].num_mux) << "point " << i;
    EXPECT_DOUBLE_EQ(a[i].functional_area, b[i].functional_area)
        << "point " << i;
    EXPECT_DOUBLE_EQ(a[i].bist_extra, b[i].bist_extra) << "point " << i;
    EXPECT_DOUBLE_EQ(a[i].overhead_percent, b[i].overhead_percent)
        << "point " << i;
  }
}

TEST(ParallelExplorer, ModuleSpecSweepMatchesSerialPointForPoint) {
  auto bench = make_tseng1();
  const std::vector<std::string> specs = {"2+,1*,1-,1&,1|,1/",
                                          "1+,3[-*/&|]"};
  ExplorerOptions serial;
  const auto expected = explore_module_specs(
      bench.design.dfg, *bench.design.schedule, specs, serial);
  ExplorerOptions parallel;
  parallel.jobs = 4;
  const auto actual = explore_module_specs(
      bench.design.dfg, *bench.design.schedule, specs, parallel);
  expect_points_equal(expected, actual);
}

TEST(ParallelExplorer, ResourceBudgetSweepMatchesSerialPointForPoint) {
  Dfg fir = make_fir(6);
  const std::vector<ResourceLimits> budgets = {
      {{OpKind::Mul, 1}, {OpKind::Add, 1}},
      {{OpKind::Mul, 2}, {OpKind::Add, 1}},
      {{OpKind::Mul, 3}, {OpKind::Add, 2}}};
  ExplorerOptions serial;
  const auto expected = explore_resource_budgets(fir, budgets, serial);
  ExplorerOptions parallel;
  parallel.jobs = 4;
  const auto actual = explore_resource_budgets(fir, budgets, parallel);
  expect_points_equal(expected, actual);
}

TEST(ParallelExplorer, TaskExceptionPropagates) {
  auto bench = make_ex1();
  ExplorerOptions opts;
  opts.jobs = 2;
  EXPECT_THROW(explore_module_specs(bench.design.dfg, *bench.design.schedule,
                                    {"1+,1*", "not a spec"}, opts),
               Error);
}

}  // namespace
}  // namespace lbist
