// Property-based tests on randomly generated scheduled DFGs:
//  * both binders always produce valid bindings with the minimum register
//    count (reverse-PVES coloring on a chordal graph cannot exceed the
//    clique number, whatever the color-choice rule),
//  * the Lemma-2 CBILBO conditions agree with a brute-force oracle that
//    enumerates every BIST embedding of the built data path,
//  * the exact BIST allocator matches exhaustive enumeration on small
//    designs and never loses to the greedy allocator,
//  * the testable arm's overhead never exceeds the traditional arm's in
//    aggregate.

#include <gtest/gtest.h>

#include <numeric>

#include "binding/bist_aware_binder.hpp"
#include "binding/cbilbo_check.hpp"
#include "binding/traditional_binder.hpp"
#include "bist/allocator.hpp"
#include "core/synthesizer.hpp"
#include "dfg/parse.hpp"
#include "dfg/random_dfg.hpp"
#include "graph/chordal.hpp"
#include "graph/coloring.hpp"
#include "graph/conflict.hpp"
#include "interconnect/build_datapath.hpp"
#include "rtl/ipath.hpp"

namespace lbist {
namespace {

RandomDfgOptions commutative_opts(std::uint64_t seed) {
  RandomDfgOptions opts;
  opts.seed = seed;
  opts.kinds = {OpKind::Add, OpKind::Mul, OpKind::And};  // Lemma 2's setting
  return opts;
}

struct BuiltRandom {
  RandomDfg rd;
  IdMap<VarId, LiveInterval> lt;
  VarConflictGraph cg;
  ModuleBinding mb;

  explicit BuiltRandom(const RandomDfgOptions& opts)
      : rd(make_random_dfg(opts)),
        lt(compute_lifetimes(rd.dfg, rd.schedule)),
        cg(build_conflict_graph(rd.dfg, lt)),
        mb(ModuleBinding::bind(rd.dfg, rd.schedule,
                               minimal_module_spec(rd.dfg, rd.schedule))) {}
};

class RandomDesigns : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDesigns, ConflictGraphsAreChordal) {
  BuiltRandom b(commutative_opts(GetParam()));
  EXPECT_TRUE(is_chordal(b.cg.graph));
}

TEST_P(RandomDesigns, BothBindersValidAndMinimum) {
  BuiltRandom b(commutative_opts(GetParam()));
  const std::size_t minimum = chordal_clique_number(b.cg.graph);

  auto trad = bind_registers_traditional(b.rd.dfg, b.cg, b.lt);
  trad.validate(b.rd.dfg, b.lt);
  EXPECT_EQ(trad.num_regs(), minimum);

  auto test = bind_registers_bist_aware(b.rd.dfg, b.cg, b.mb);
  test.validate(b.rd.dfg, b.lt);
  EXPECT_EQ(test.num_regs(), minimum);
}

TEST_P(RandomDesigns, Lemma2MatchesBruteForceOracle) {
  BuiltRandom b(commutative_opts(GetParam()));
  auto rb = bind_registers_traditional(b.rd.dfg, b.cg, b.lt);
  auto dp = build_datapath(b.rd.dfg, b.mb, rb);
  auto lemma = forced_cbilbos(b.rd.dfg, b.mb, rb);

  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    // The lemma's setting: binary commutative modules where every instance
    // reads two distinct registers.
    bool clean = true;
    for (OpId opid : b.mb.instances(
             ModuleId{static_cast<ModuleId::value_type>(m)})) {
      const auto& op = b.rd.dfg.op(opid);
      if (op.lhs == op.rhs || !is_commutative(op.kind)) clean = false;
      if (!b.rd.dfg.var(op.result).allocatable()) clean = false;
    }
    if (!clean) continue;

    auto embeddings = enumerate_embeddings(dp, m);
    if (embeddings.empty()) continue;
    const bool brute_forced =
        std::all_of(embeddings.begin(), embeddings.end(),
                    [](const BistEmbedding& e) { return e.needs_cbilbo(); });
    const bool lemma_forced =
        std::any_of(lemma.begin(), lemma.end(), [&](const ForcedCbilbo& f) {
          return f.module.index() == m;
        });
    EXPECT_EQ(lemma_forced, brute_forced)
        << "seed " << GetParam() << " module " << dp.modules[m].name;
  }
}

TEST_P(RandomDesigns, ExactAllocatorMatchesExhaustiveSearch) {
  // Small designs keep the exhaustive product tractable so the oracle
  // actually runs (larger seeds would all skip).
  RandomDfgOptions small = commutative_opts(GetParam());
  small.num_steps = 4;
  small.ops_per_step = 2;
  BuiltRandom b(small);
  auto rb = bind_registers_bist_aware(b.rd.dfg, b.cg, b.mb);
  auto dp = build_datapath(b.rd.dfg, b.mb, rb);

  AreaModel model;
  BistAllocator alloc(model);
  auto sol = alloc.solve(dp);

  // Exhaustive product over per-module embeddings (skip if too large).
  std::vector<std::vector<BistEmbedding>> all;
  double combos = 1;
  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    all.push_back(enumerate_embeddings(dp, m));
    if (!all.back().empty()) {
      combos *= static_cast<double>(all.back().size());
    }
  }
  if (combos > 200000) GTEST_SKIP() << "search space too large";

  double best = 1e18;
  std::vector<std::size_t> pick(all.size(), 0);
  while (true) {
    std::vector<RoleFlags> flags(dp.registers.size());
    for (std::size_t m = 0; m < all.size(); ++m) {
      if (all[m].empty()) continue;
      const auto& e = all[m][pick[m]];
      flags[e.tpg_left].tpg = true;
      flags[e.tpg_right].tpg = true;
      if (e.sa.has_value()) {
        flags[*e.sa].sa = true;
        if (e.needs_cbilbo()) flags[*e.sa].cbilbo = true;
      }
    }
    double area = 0;
    for (const auto& f : flags) area += model.role_extra(f.role());
    best = std::min(best, area);
    // Odometer increment.
    std::size_t i = 0;
    for (; i < all.size(); ++i) {
      if (all[i].empty()) continue;
      if (++pick[i] < all[i].size()) break;
      pick[i] = 0;
    }
    if (i == all.size()) break;
  }
  EXPECT_NEAR(sol.extra_area, best, 1e-9) << "seed " << GetParam();
}

TEST_P(RandomDesigns, GreedyNeverBeatsExact) {
  BuiltRandom b(commutative_opts(GetParam()));
  auto rb = bind_registers_bist_aware(b.rd.dfg, b.cg, b.mb);
  auto dp = build_datapath(b.rd.dfg, b.mb, rb);
  BistAllocator alloc{AreaModel{}};
  EXPECT_LE(alloc.solve(dp).extra_area,
            alloc.solve_greedy(dp).extra_area + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDesigns,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST_P(RandomDesigns, TextFormatRoundTripsExactly) {
  auto rd = make_random_dfg(commutative_opts(GetParam()));
  const std::string printed = print_dfg(rd.dfg, &rd.schedule);
  auto reparsed = parse_dfg(printed);
  ASSERT_TRUE(reparsed.schedule.has_value());
  EXPECT_EQ(print_dfg(reparsed.dfg, &*reparsed.schedule), printed);
}

TEST(AggregateProperty, TestableBeatsTraditionalOnAverage) {
  double trad_total = 0.0, test_total = 0.0;
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    RandomDfgOptions ropts = commutative_opts(seed);
    auto rd = make_random_dfg(ropts);
    auto protos = minimal_module_spec(rd.dfg, rd.schedule);

    SynthesisOptions trad;
    trad.binder = BinderKind::Traditional;
    SynthesisOptions test;
    test.binder = BinderKind::BistAware;
    trad_total +=
        Synthesizer(trad).run(rd.dfg, rd.schedule, protos).overhead_percent;
    test_total +=
        Synthesizer(test).run(rd.dfg, rd.schedule, protos).overhead_percent;
  }
  EXPECT_LE(test_total, trad_total + 1e-9);
}

TEST(AggregateProperty, AblationIngredientsNeverHurtInAggregate) {
  // Full heuristic vs everything-off across 15 seeds.
  double full_total = 0.0, off_total = 0.0;
  for (std::uint64_t seed = 200; seed < 215; ++seed) {
    auto rd = make_random_dfg(commutative_opts(seed));
    auto protos = minimal_module_spec(rd.dfg, rd.schedule);
    SynthesisOptions full;
    full.binder = BinderKind::BistAware;
    SynthesisOptions off;
    off.binder = BinderKind::BistAware;
    off.bist_binder.sd_ordered_pves = false;
    off.bist_binder.delta_sd_rule = false;
    off.bist_binder.case_overrides = false;
    off.bist_binder.avoid_cbilbo = false;
    full_total +=
        Synthesizer(full).run(rd.dfg, rd.schedule, protos).overhead_percent;
    off_total +=
        Synthesizer(off).run(rd.dfg, rd.schedule, protos).overhead_percent;
  }
  EXPECT_LE(full_total, off_total + 1e-9);
}

}  // namespace
}  // namespace lbist
