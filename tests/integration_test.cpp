// Integration tests: the full pipeline on every paper benchmark, asserting
// the *shape* of the paper's Tables I and II (same minimum register counts
// in both arms, lower BIST overhead and no more CBILBOs for the testable
// arm).

#include <gtest/gtest.h>

#include "binding/cbilbo_check.hpp"
#include "core/chip.hpp"
#include "core/compare.hpp"
#include "core/report.hpp"
#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "graph/coloring.hpp"
#include "graph/conflict.hpp"
#include "passes/pipeline.hpp"

namespace lbist {
namespace {

class PaperBenchmarks : public ::testing::TestWithParam<int> {
 protected:
  static std::vector<ComparisonRow>& rows() {
    static std::vector<ComparisonRow> r = compare_paper_benchmarks();
    return r;
  }
  const ComparisonRow& row() const {
    return rows()[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(PaperBenchmarks, RegisterCountsAreEqualAndMinimum) {
  const auto& r = row();
  EXPECT_EQ(r.traditional.num_registers(), r.testable.num_registers())
      << r.name;
  const std::vector<std::pair<std::string, int>> expected = {
      {"ex1", 3}, {"ex2", 5}, {"Tseng1", 5}, {"Tseng2", 5}, {"Paulin", 4}};
  for (const auto& [name, regs] : expected) {
    if (name == r.name) {
      EXPECT_EQ(r.testable.num_registers(), regs);
    }
  }
}

TEST_P(PaperBenchmarks, TestableArmNeverWorse) {
  const auto& r = row();
  EXPECT_LE(r.testable.overhead_percent,
            r.traditional.overhead_percent + 1e-9)
      << r.name;
}

TEST_P(PaperBenchmarks, TestableArmHasNoMoreCbilbos) {
  const auto& r = row();
  EXPECT_LE(r.testable.bist.counts().cbilbo,
            r.traditional.bist.counts().cbilbo)
      << r.name;
}

TEST_P(PaperBenchmarks, AllModulesTestable) {
  const auto& r = row();
  EXPECT_TRUE(r.testable.bist.untestable_modules.empty()) << r.name;
  EXPECT_TRUE(r.traditional.bist.untestable_modules.empty()) << r.name;
}

TEST_P(PaperBenchmarks, MuxCountsComparable) {
  // The paper's mux counts move by at most a few in either direction
  // (Table I: -2 to +3).
  const auto& r = row();
  EXPECT_LE(std::abs(r.testable.num_mux() - r.traditional.num_mux()), 4)
      << r.name;
}

TEST_P(PaperBenchmarks, OverheadIsPlausiblePercentage) {
  const auto& r = row();
  for (const auto* arm : {&r.traditional, &r.testable}) {
    EXPECT_GT(arm->overhead_percent, 0.0) << r.name;
    EXPECT_LT(arm->overhead_percent, 60.0) << r.name;
  }
}

std::string bench_param_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const names[] = {"ex1", "ex2", "Tseng1", "Tseng2",
                                      "Paulin"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllFive, PaperBenchmarks, ::testing::Range(0, 5),
                         bench_param_name);

TEST(TableOneShape, AggregateReductionSignificant) {
  auto rows = compare_paper_benchmarks();
  double total_trad = 0.0, total_test = 0.0;
  int strictly_better = 0;
  for (const auto& r : rows) {
    total_trad += r.traditional.overhead_percent;
    total_test += r.testable.overhead_percent;
    if (r.reduction_percent() > 1.0) ++strictly_better;
  }
  // Paper: 30-46% reduction on every row.  Require a clear aggregate win
  // and strict wins on most rows.
  EXPECT_LT(total_test, 0.85 * total_trad);
  EXPECT_GE(strictly_better, 3);
}

TEST(TableTwoShape, TestableUsesFewerBistRegisters) {
  auto rows = compare_paper_benchmarks();
  int trad_cbilbos = 0, test_cbilbos = 0;
  for (const auto& r : rows) {
    trad_cbilbos += r.traditional.bist.counts().cbilbo;
    test_cbilbos += r.testable.bist.counts().cbilbo;
  }
  EXPECT_LT(test_cbilbos, trad_cbilbos);
}

TEST(Lemma2Integration, TestableBindingAvoidsForcedCbilbos) {
  // On every paper benchmark the BIST-aware binding should have no more
  // Lemma-2 forced CBILBOs than the traditional binding.
  for (const auto& bench : paper_benchmarks()) {
    auto row = compare_benchmark(bench);
    const auto& dfg = bench.design.dfg;
    auto f_trad =
        forced_cbilbos(dfg, row.traditional.modules, row.traditional.registers);
    auto f_test =
        forced_cbilbos(dfg, row.testable.modules, row.testable.registers);
    EXPECT_LE(f_test.size(), f_trad.size()) << bench.name;
  }
}

TEST(DescribeOutput, ContainsEverySection) {
  auto bench = make_ex1();
  auto row = compare_benchmark(bench);
  const std::string s = row.testable.describe(bench.design.dfg);
  EXPECT_NE(s.find("register binding:"), std::string::npos);
  EXPECT_NE(s.find("datapath"), std::string::npos);
  EXPECT_NE(s.find("BIST solution:"), std::string::npos);
}

TEST(SynthesizerOptions, AblationArmsRunEndToEnd) {
  auto bench = make_tseng1();
  const auto protos = parse_module_spec(bench.module_spec);
  for (bool pves : {false, true}) {
    for (bool cbilbo : {false, true}) {
      SynthesisOptions opts;
      opts.binder = BinderKind::BistAware;
      opts.bist_binder.sd_ordered_pves = pves;
      opts.bist_binder.avoid_cbilbo = cbilbo;
      auto result = Synthesizer(opts).run(bench.design.dfg,
                                          *bench.design.schedule, protos);
      EXPECT_EQ(result.num_registers(), 5);
      EXPECT_GT(result.overhead_percent, 0.0);
    }
  }
}

TEST(ChipFacade, OneCallProducesEverything) {
  auto bench = make_ex1();
  ChipOptions opts;
  SelfTestingChip chip = synthesize_chip(
      print_dfg(bench.design.dfg, &*bench.design.schedule),
      bench.module_spec, opts);
  EXPECT_EQ(chip.synthesis.num_registers(), 3);
  EXPECT_GT(chip.plan.avg_coverage, 0.9);
  EXPECT_GT(chip.selftest.coverage(), 0.9);
  EXPECT_NE(chip.datapath_verilog.find("module ex1 ("), std::string::npos);
  EXPECT_NE(chip.controller_verilog.find("module ex1_ctrl ("),
            std::string::npos);
  EXPECT_NE(chip.testbench_verilog.find("module ex1_tb;"),
            std::string::npos);
  EXPECT_NE(chip.bist_verilog.find("module ex1_bist ("), std::string::npos);
  const std::string s = chip.summary(bench.design.dfg);
  EXPECT_NE(s.find("chip-level self-test:"), std::string::npos);
}

TEST(ChipFacade, RejectsUnscheduledText) {
  EXPECT_THROW((void)synthesize_chip(
                   "dfg t\ninput a b\nop add1 + a b -> c\noutput c\n",
                   "1+"),
               Error);
}

TEST(ChipFacade, RunsOnEveryPaperBenchmark) {
  for (const auto& bench : paper_benchmarks()) {
    ChipOptions opts;
    opts.patterns = 100;
    SelfTestingChip chip = synthesize_chip(
        bench.design.dfg, *bench.design.schedule,
        parse_module_spec(bench.module_spec), opts);
    EXPECT_GT(chip.selftest.coverage(), 0.9) << bench.name;
    EXPECT_FALSE(chip.bist_verilog.empty()) << bench.name;
  }
}

// Checkpoint/resume property over the whole paper suite: for both arms of
// every Table I row, interrupting synthesis at any stage boundary, dumping
// the IR snapshot and resuming from the re-parsed dump must reproduce the
// uninterrupted run byte for byte (text report and JSON report alike).
TEST(PassSnapshots, EveryPaperBenchmarkResumesFromEveryStage) {
  const PassPipeline& pipeline = PassPipeline::standard();
  for (const auto& bench : paper_benchmarks()) {
    const auto protos = parse_module_spec(bench.module_spec);
    for (BinderKind kind : {BinderKind::Traditional, BinderKind::BistAware}) {
      SynthesisOptions opts;
      opts.binder = kind;
      const SynthesisResult full = Synthesizer(opts).run(
          bench.design.dfg, *bench.design.schedule, protos);
      const std::string want_text = full.describe(bench.design.dfg);
      const std::string want_json = report_json(bench.design.dfg, full).dump();
      for (std::size_t stage = 0; stage <= pipeline.num_passes(); ++stage) {
        SynthState state(bench.design.dfg, *bench.design.schedule, protos,
                         opts);
        pipeline.run(state, stage);
        SynthState resumed =
            pipeline.restore(Json::parse(pipeline.snapshot(state).dump()));
        pipeline.run(resumed);
        EXPECT_EQ(resumed.result.describe(resumed.dfg()), want_text)
            << bench.name << " stage " << stage;
        EXPECT_EQ(report_json(resumed.dfg(), resumed.result).dump(), want_json)
            << bench.name << " stage " << stage;
      }
    }
  }
}

}  // namespace
}  // namespace lbist
