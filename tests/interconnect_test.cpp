// Unit tests for interconnect: port assignment (IR^L / IR^R / IR^LR) and
// data-path construction with mux counting.

#include <gtest/gtest.h>

#include "binding/bist_aware_binder.hpp"
#include "binding/traditional_binder.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/lifetime.hpp"
#include "graph/conflict.hpp"
#include "interconnect/build_datapath.hpp"
#include "interconnect/port_assign.hpp"

namespace lbist {
namespace {

TEST(PortAssign, TwoInstancesShareSides) {
  // Instances (0,1) and (0,2): register 0 one side, 1 and 2 the other.
  std::vector<PortConstraint> cs = {{0, 1, true}, {0, 2, true}};
  auto pa = assign_ports(3, cs);
  EXPECT_EQ(pa.both_count(), 0);
  EXPECT_NE(pa.side[0], pa.side[1]);
  EXPECT_NE(pa.side[0], pa.side[2]);
  EXPECT_EQ(pa.side[1], pa.side[2]);
}

TEST(PortAssign, OddCycleForcesOneBoth) {
  // Triangle: (0,1), (1,2), (2,0) — not 2-colorable.
  std::vector<PortConstraint> cs = {{0, 1, true}, {1, 2, true}, {2, 0, true}};
  auto pa = assign_ports(3, cs);
  EXPECT_EQ(pa.both_count(), 1);
}

TEST(PortAssign, WeightSteersPromotion) {
  std::vector<PortConstraint> cs = {{0, 1, true}, {1, 2, true}, {2, 0, true}};
  auto pa = assign_ports(3, cs, {0, 5, 0});
  EXPECT_EQ(pa.side[1], PortSide::Both);
}

TEST(PortAssign, NonCommutativePinsSides) {
  std::vector<PortConstraint> cs = {{0, 1, false}};
  auto pa = assign_ports(2, cs);
  EXPECT_EQ(pa.side[0], PortSide::Left);
  EXPECT_EQ(pa.side[1], PortSide::Right);
}

TEST(PortAssign, ConflictingNonCommutativePinsPromote) {
  // Register 0 is lhs of one div and rhs of another: must reach both ports.
  std::vector<PortConstraint> cs = {{0, 1, false}, {2, 0, false}};
  auto pa = assign_ports(3, cs);
  EXPECT_EQ(pa.side[0], PortSide::Both);
  EXPECT_EQ(pa.both_count(), 1);
}

TEST(PortAssign, SameRegisterBothOperands) {
  std::vector<PortConstraint> cs = {{0, 0, true}};
  auto pa = assign_ports(1, cs);
  EXPECT_EQ(pa.side[0], PortSide::Both);
}

TEST(PortAssign, MixedForcedAndFree) {
  // div pins (0 -> L, 1 -> R); add (1, 2) then forces 2 -> L.
  std::vector<PortConstraint> cs = {{0, 1, false}, {1, 2, true}};
  auto pa = assign_ports(3, cs);
  EXPECT_EQ(pa.side[0], PortSide::Left);
  EXPECT_EQ(pa.side[1], PortSide::Right);
  EXPECT_EQ(pa.side[2], PortSide::Left);
}

struct BuiltEx1 {
  Benchmark bench = make_ex1();
  IdMap<VarId, LiveInterval> lt =
      compute_lifetimes(bench.design.dfg, *bench.design.schedule);
  VarConflictGraph cg = build_conflict_graph(bench.design.dfg, lt);
  ModuleBinding mb =
      ModuleBinding::bind(bench.design.dfg, *bench.design.schedule,
                          parse_module_spec(bench.module_spec));
  RegisterBinding rb = bind_registers_bist_aware(bench.design.dfg, cg, mb);
  Datapath dp = build_datapath(bench.design.dfg, mb, rb);
};

TEST(BuildDatapath, Ex1Structure) {
  BuiltEx1 f;
  EXPECT_EQ(f.dp.num_allocated, 3u);
  EXPECT_EQ(f.dp.registers.size(), 3u);  // no port-resident inputs
  EXPECT_EQ(f.dp.modules.size(), 2u);
  EXPECT_GT(f.dp.mux_count(), 0);
}

TEST(BuildDatapath, EveryInstanceRoutedToOppositePorts) {
  BuiltEx1 f;
  for (const auto& op : f.bench.design.dfg.ops()) {
    const auto& [l, r] = f.dp.routes[op.id];
    EXPECT_NE(l.to_left, r.to_left) << op.name;
  }
}

TEST(BuildDatapath, ConnectivityCoversFunctionalNeeds) {
  BuiltEx1 f;
  const Dfg& dfg = f.bench.design.dfg;
  for (const auto& op : dfg.ops()) {
    const auto& mod = f.dp.modules[f.mb.module_of(op.id).index()];
    const auto& [lroute, rroute] = f.dp.routes[op.id];
    const auto& lport = lroute.to_left ? mod.left_sources : mod.right_sources;
    const auto& rport = rroute.to_left ? mod.left_sources : mod.right_sources;
    EXPECT_TRUE(lport.count(lroute.reg) > 0);
    EXPECT_TRUE(rport.count(rroute.reg) > 0);
    // Result lands in the register holding the result variable.
    if (dfg.var(op.result).allocatable()) {
      const std::size_t dest = f.rb.reg_of[op.result].index();
      EXPECT_TRUE(mod.dest_registers.count(dest) > 0);
    }
  }
}

TEST(BuildDatapath, PaulinDedicatedInputRegisters) {
  auto bench = make_paulin();
  auto lt = compute_lifetimes(bench.design.dfg, *bench.design.schedule);
  auto cg = build_conflict_graph(bench.design.dfg, lt);
  auto mb = ModuleBinding::bind(bench.design.dfg, *bench.design.schedule,
                                parse_module_spec(bench.module_spec));
  auto rb = bind_registers_bist_aware(bench.design.dfg, cg, mb);
  auto dp = build_datapath(bench.design.dfg, mb, rb);
  EXPECT_EQ(dp.num_allocated, 4u);
  EXPECT_EQ(dp.registers.size(), 4u + 6u);  // x, u, dx, y, a, c3
  int dedicated = 0;
  for (const auto& r : dp.registers) dedicated += r.dedicated_input ? 1 : 0;
  EXPECT_EQ(dedicated, 6);
  // The compare feeds the controller.
  bool control = false;
  for (const auto& m : dp.modules) control = control || m.drives_control;
  EXPECT_TRUE(control);
}

TEST(BuildDatapath, MuxCountMatchesHandCount) {
  BuiltEx1 f;
  // Recount by definition: one mux unit per destination with >= 2 sources.
  int expected = 0;
  for (const auto& m : f.dp.modules) {
    expected += m.left_sources.size() > 1 ? 1 : 0;
    expected += m.right_sources.size() > 1 ? 1 : 0;
  }
  for (const auto& r : f.dp.registers) {
    const std::size_t k =
        r.source_modules.size() + (r.external_source ? 1u : 0u);
    expected += k > 1 ? 1 : 0;
  }
  EXPECT_EQ(f.dp.mux_count(), expected);
}

TEST(BuildDatapath, SdWeightingTogglesAreAccepted) {
  BuiltEx1 f;
  InterconnectOptions unweighted;
  unweighted.weight_by_sd = false;
  auto dp2 = build_datapath(f.bench.design.dfg, f.mb, f.rb, unweighted);
  EXPECT_EQ(dp2.num_allocated, f.dp.num_allocated);
  // Mux-minimality target |IR^LR| is identical; only promotion choice may
  // differ, so total mux count stays within one of the weighted build.
  EXPECT_NEAR(dp2.mux_count(), f.dp.mux_count(), 1.0);
}

TEST(BuildDatapath, SelfAdjacencyDetection) {
  BuiltEx1 f;
  // ex1: d and g live in some register; mul2 reads d,g and writes h.  If h
  // shares a register with d or g, that register is self-adjacent.
  auto self_adj = f.dp.self_adjacent_registers();
  for (std::size_t r : self_adj) {
    bool confirmed = false;
    for (const auto& m : f.dp.modules) {
      if ((m.left_sources.count(r) > 0 || m.right_sources.count(r) > 0) &&
          m.dest_registers.count(r) > 0) {
        confirmed = true;
      }
    }
    EXPECT_TRUE(confirmed);
  }
}

}  // namespace
}  // namespace lbist
