// Unit tests for the binding library: module specs, module binding, sharing
// degrees, the Lemma-2 CBILBO conditions and both register binders.

#include <gtest/gtest.h>

#include "binding/bist_aware_binder.hpp"
#include "binding/cbilbo_check.hpp"
#include "binding/module_binding.hpp"
#include "binding/module_spec.hpp"
#include "binding/sharing.hpp"
#include "binding/traditional_binder.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/lifetime.hpp"
#include "graph/coloring.hpp"
#include "graph/conflict.hpp"
#include "support/check.hpp"

namespace lbist {
namespace {

struct Ex1 {
  Benchmark bench = make_ex1();
  IdMap<VarId, LiveInterval> lt =
      compute_lifetimes(bench.design.dfg, *bench.design.schedule);
  VarConflictGraph cg = build_conflict_graph(bench.design.dfg, lt);
  ModuleBinding mb = ModuleBinding::bind(bench.design.dfg,
                                         *bench.design.schedule,
                                         parse_module_spec("1+,1*"));
  VarId v(const char* name) const {
    return *bench.design.dfg.find_var(name);
  }
};

TEST(ModuleSpec, ParsesCountsAndSymbols) {
  auto protos = parse_module_spec("1/,2*,2+,1&");
  ASSERT_EQ(protos.size(), 6u);
  EXPECT_EQ(protos[0].supports, std::vector<OpKind>{OpKind::Div});
  EXPECT_EQ(protos[1].supports, std::vector<OpKind>{OpKind::Mul});
  EXPECT_EQ(protos[2].supports, std::vector<OpKind>{OpKind::Mul});
  EXPECT_EQ(protos[5].supports, std::vector<OpKind>{OpKind::And});
}

TEST(ModuleSpec, ParsesAluSets) {
  auto protos = parse_module_spec("1+,3[-*/&|]");
  ASSERT_EQ(protos.size(), 4u);
  EXPECT_EQ(protos[1].supports.size(), 5u);
  EXPECT_TRUE(protos[1].supports_kind(OpKind::Div));
  EXPECT_FALSE(protos[1].supports_kind(OpKind::Add));
  EXPECT_EQ(protos[1].label(), "[-*/&|]");
}

TEST(ModuleSpec, RejectsGarbage) {
  EXPECT_THROW(parse_module_spec(""), Error);
  EXPECT_THROW(parse_module_spec("2"), Error);
  EXPECT_THROW(parse_module_spec("1%"), Error);
  EXPECT_THROW(parse_module_spec("1[+"), Error);
  EXPECT_THROW(parse_module_spec("1[]"), Error);
}

TEST(ModuleSpec, MinimalSpecCoversBusiestStep) {
  auto bench = make_ex2();
  auto protos =
      minimal_module_spec(bench.design.dfg, *bench.design.schedule);
  // ex2 runs two multiplies in step 1, everything else is 1-wide.
  int muls = 0;
  for (const auto& p : protos) {
    if (p.supports_kind(OpKind::Mul)) ++muls;
  }
  EXPECT_EQ(muls, 2);
}

TEST(ModuleBinding, Ex1SetsMatchPaper) {
  Ex1 f;
  // M1 = adder with instances add1, add2; M2 = multiplier with mul1, mul2.
  EXPECT_EQ(f.mb.num_modules(), 2u);
  EXPECT_EQ(f.mb.temporal_multiplicity(ModuleId{0}), 2u);
  EXPECT_EQ(f.mb.temporal_multiplicity(ModuleId{1}), 2u);
  // I_M1 = {a, b, c, d}, O_M1 = {d, f} — the paper's stated sets.
  const auto& i1 = f.mb.input_vars(ModuleId{0});
  for (const char* n : {"a", "b", "c", "d"}) {
    EXPECT_TRUE(i1.test(f.v(n).index())) << n;
  }
  EXPECT_EQ(i1.count(), 4u);
  const auto& o1 = f.mb.output_vars(ModuleId{0});
  EXPECT_TRUE(o1.test(f.v("d").index()));
  EXPECT_TRUE(o1.test(f.v("f").index()));
  EXPECT_EQ(o1.count(), 2u);
}

TEST(ModuleBinding, InstanceOperandsArePerInstance) {
  Ex1 f;
  // add1 reads {a,b}; add2 reads {c,d}.
  const auto& j0 = f.mb.instance_operands(ModuleId{0}, 0);
  EXPECT_TRUE(j0.test(f.v("a").index()));
  EXPECT_TRUE(j0.test(f.v("b").index()));
  EXPECT_EQ(j0.count(), 2u);
  const auto& j1 = f.mb.instance_operands(ModuleId{0}, 1);
  EXPECT_TRUE(j1.test(f.v("c").index()));
  EXPECT_TRUE(j1.test(f.v("d").index()));
}

TEST(ModuleBinding, ThrowsWhenSpecTooSmall) {
  auto bench = make_ex2();  // two muls in step 1
  EXPECT_THROW(ModuleBinding::bind(bench.design.dfg, *bench.design.schedule,
                                   parse_module_spec("1/,1*,2+,1&")),
               Error);
}

TEST(ModuleBinding, AluClusteringCoversMixedKinds) {
  auto bench = make_tseng2();
  auto mb = ModuleBinding::bind(bench.design.dfg, *bench.design.schedule,
                                parse_module_spec(bench.module_spec));
  EXPECT_EQ(mb.num_modules(), 4u);
  // Every op got a module.
  for (const auto& op : bench.design.dfg.ops()) {
    EXPECT_TRUE(mb.module_of(op.id).valid());
  }
}

TEST(Sharing, Ex1VariableDegreesMatchHandComputation) {
  Ex1 f;
  SharingAnalysis sa(f.bench.design.dfg, f.mb);
  // d ∈ I_M1, O_M1, I_M2 -> SD 3; f ∈ O_M1, I_M2 -> 2; g ∈ I_M2, O_M2 -> 2.
  EXPECT_EQ(sa.sd(f.v("a")), 1);
  EXPECT_EQ(sa.sd(f.v("b")), 1);
  EXPECT_EQ(sa.sd(f.v("c")), 1);
  EXPECT_EQ(sa.sd(f.v("d")), 3);
  EXPECT_EQ(sa.sd(f.v("e")), 1);
  EXPECT_EQ(sa.sd(f.v("f")), 2);
  EXPECT_EQ(sa.sd(f.v("g")), 2);
  EXPECT_EQ(sa.sd(f.v("h")), 1);
}

TEST(Sharing, RegisterSdIsUnionNotSum) {
  Ex1 f;
  SharingAnalysis sa(f.bench.design.dfg, f.mb);
  // {a, c} both only in I_M1: SD of the union is 1, not 2.
  DynBitset m = sa.mask(f.v("a"));
  m |= sa.mask(f.v("c"));
  EXPECT_EQ(SharingAnalysis::sd_of(m), 1);
  // {d} ∪ {h}: {I_M1, O_M1, I_M2} ∪ {O_M2} = 4.
  DynBitset m2 = sa.mask(f.v("d"));
  m2 |= sa.mask(f.v("h"));
  EXPECT_EQ(SharingAnalysis::sd_of(m2), 4);
}

TEST(CbilboCheck, CaseOneFires) {
  Ex1 f;
  const Dfg& dfg = f.bench.design.dfg;
  // Put the multiplier's outputs {g, h} AND an operand of every multiplier
  // instance into one register.  mul1 reads {e,f}, mul2 reads {d,g}.
  // R0 = {g, h, e}: holds all outputs, g covers mul2, e covers mul1.
  std::vector<DynBitset> masks(2, DynBitset(dfg.num_vars()));
  masks[0].set(f.v("g").index());
  masks[0].set(f.v("h").index());
  masks[0].set(f.v("e").index());
  masks[1].set(f.v("a").index());
  auto forced = forced_cbilbos(f.mb, masks);
  ASSERT_EQ(forced.size(), 1u);
  EXPECT_EQ(forced[0].reg, RegId{0});
  EXPECT_EQ(forced[0].module, ModuleId{1});
  EXPECT_EQ(forced[0].lemma_case, 1);
}

TEST(CbilboCheck, CaseTwoFiresSymmetrically) {
  Ex1 f;
  const Dfg& dfg = f.bench.design.dfg;
  // Outputs of M2 split: g in R0, h in R1; both registers hold an operand
  // of every instance of M2 (mul1 reads {e,f}, mul2 reads {d,g}).
  std::vector<DynBitset> masks(2, DynBitset(dfg.num_vars()));
  masks[0].set(f.v("g").index());  // covers mul2
  masks[0].set(f.v("e").index());  // covers mul1
  masks[1].set(f.v("h").index());
  masks[1].set(f.v("f").index());  // covers mul1
  masks[1].set(f.v("d").index());  // covers mul2
  auto forced = forced_cbilbos(f.mb, masks);
  ASSERT_EQ(forced.size(), 1u);
  EXPECT_EQ(forced[0].lemma_case, 2);
  EXPECT_EQ(forced[0].reg, RegId{0});
  EXPECT_EQ(forced[0].partner, RegId{1});
}

TEST(CbilboCheck, NoForcingWithFreeSaChoice) {
  Ex1 f;
  const Dfg& dfg = f.bench.design.dfg;
  // Outputs split across two registers but the second register holds no
  // operand of mul1 -> a CBILBO-free embedding exists.
  std::vector<DynBitset> masks(2, DynBitset(dfg.num_vars()));
  masks[0].set(f.v("g").index());
  masks[0].set(f.v("e").index());
  masks[1].set(f.v("h").index());  // no operands at all
  auto forced = forced_cbilbos(f.mb, masks);
  EXPECT_TRUE(forced.empty());
}

TEST(TraditionalBinder, MinimumRegistersOnAllBenchmarks) {
  for (const auto& bench : paper_benchmarks()) {
    auto lt = compute_lifetimes(bench.design.dfg, *bench.design.schedule);
    auto cg = build_conflict_graph(bench.design.dfg, lt);
    auto rb = bind_registers_traditional(bench.design.dfg, cg, lt);
    rb.validate(bench.design.dfg, lt);
    EXPECT_EQ(rb.num_regs(), chordal_clique_number(cg.graph)) << bench.name;
  }
}

TEST(BistAwareBinder, MinimumRegistersOnAllBenchmarks) {
  for (const auto& bench : paper_benchmarks()) {
    auto lt = compute_lifetimes(bench.design.dfg, *bench.design.schedule);
    auto cg = build_conflict_graph(bench.design.dfg, lt);
    auto mb = ModuleBinding::bind(bench.design.dfg, *bench.design.schedule,
                                  parse_module_spec(bench.module_spec));
    auto rb = bind_registers_bist_aware(bench.design.dfg, cg, mb);
    rb.validate(bench.design.dfg, lt);
    // The paper reports the minimum register count on every benchmark.
    EXPECT_EQ(rb.num_regs(), chordal_clique_number(cg.graph)) << bench.name;
  }
}

TEST(BistAwareBinder, NoForcedCbilboOnEx1) {
  Ex1 f;
  auto rb = bind_registers_bist_aware(f.bench.design.dfg, f.cg, f.mb);
  rb.validate(f.bench.design.dfg, f.lt);
  // The testable binding of ex1 admits a CBILBO-free Lemma-2 profile.
  EXPECT_TRUE(forced_cbilbos(f.bench.design.dfg, f.mb, rb).empty());
}

TEST(BistAwareBinder, TraceExplainsDecisions) {
  Ex1 f;
  std::vector<std::string> trace;
  auto rb = bind_registers_bist_aware(f.bench.design.dfg, f.cg, f.mb, {},
                                      &trace);
  EXPECT_EQ(trace.size() >= f.cg.vars.size(), true);
  (void)rb;
}

TEST(BistAwareBinder, OptionsAreHonored) {
  // With everything off the binder degenerates to reverse-PVES first-fit,
  // i.e. it still produces a valid minimum binding.
  Ex1 f;
  BistBinderOptions off;
  off.sd_ordered_pves = false;
  off.delta_sd_rule = false;
  off.case_overrides = false;
  off.avoid_cbilbo = false;
  auto rb = bind_registers_bist_aware(f.bench.design.dfg, f.cg, f.mb, off);
  rb.validate(f.bench.design.dfg, f.lt);
  EXPECT_EQ(rb.num_regs(), 3u);
}

TEST(RegisterBinding, ValidateCatchesConflicts) {
  Ex1 f;
  RegisterBinding rb;
  rb.reg_of.assign(f.bench.design.dfg.num_vars(), RegId::invalid());
  rb.regs.resize(1);
  for (const auto& var : f.bench.design.dfg.vars()) {
    rb.regs[0].push_back(var.id);
    rb.reg_of[var.id] = RegId{0};
  }
  EXPECT_THROW(rb.validate(f.bench.design.dfg, f.lt), Error);
}

TEST(RegisterBinding, ToStringListsMembers) {
  Ex1 f;
  auto rb = bind_registers_traditional(f.bench.design.dfg, f.cg, f.lt);
  const std::string s = rb.to_string(f.bench.design.dfg);
  EXPECT_NE(s.find("R1={"), std::string::npos);
}

}  // namespace
}  // namespace lbist
