// Exhaustive binding enumeration and the annealed binder.

#include <gtest/gtest.h>

#include "binding/bist_aware_binder.hpp"
#include "binding/enumerate.hpp"
#include "core/annealed_binder.hpp"
#include "dfg/benchmarks.hpp"
#include "graph/coloring.hpp"
#include "graph/conflict.hpp"

namespace lbist {
namespace {

struct Ex1Fixture {
  Benchmark bench = make_ex1();
  IdMap<VarId, LiveInterval> lt =
      compute_lifetimes(bench.design.dfg, *bench.design.schedule);
  VarConflictGraph cg = build_conflict_graph(bench.design.dfg, lt);
  ModuleBinding mb =
      ModuleBinding::bind(bench.design.dfg, *bench.design.schedule,
                          parse_module_spec(bench.module_spec));
};

TEST(Enumerate, AllBindingsAreValidAndCanonical) {
  Ex1Fixture f;
  std::size_t count = 0;
  std::set<std::string> seen;
  (void)enumerate_bindings(f.bench.design.dfg, f.cg, 3,
                           [&](const RegisterBinding& rb) {
                             rb.validate(f.bench.design.dfg, f.lt);
                             // Canonical: no duplicates up to renaming.
                             EXPECT_TRUE(
                                 seen.insert(rb.to_string(f.bench.design.dfg))
                                     .second);
                             ++count;
                             return true;
                           });
  EXPECT_GT(count, 0u);
  EXPECT_EQ(seen.size(), count);
}

TEST(Enumerate, CountsMatchHandComputableGraphs) {
  // An empty 3-vertex conflict graph: partitions of 3 elements into <= 3
  // classes = Bell(3) = 5; into exactly 2 classes = S(3,2) = 3.
  Dfg dfg("free");
  VarId a = dfg.add_input("a");
  VarId b = dfg.add_input("b");
  VarId r1 = dfg.add_op(OpKind::Add, a, b, "r1");
  dfg.mark_output(r1);
  // Hand-build a conflict graph with 3 isolated vertices.
  VarConflictGraph cg;
  cg.vertex_of.assign(dfg.num_vars(), -1);
  for (VarId v : {a, b, r1}) {
    cg.vertex_of[v] = static_cast<int>(cg.vars.size());
    cg.vars.push_back(v);
  }
  cg.graph = UndirectedGraph(3);
  EXPECT_EQ(enumerate_bindings(dfg, cg, 3,
                               [](const RegisterBinding&) { return true; }),
            5u);
  EXPECT_EQ(count_bindings_exact(dfg, cg, 2), 3u);
  // A triangle conflict graph admits exactly one binding (all singletons).
  cg.graph.add_edge(0, 1);
  cg.graph.add_edge(1, 2);
  cg.graph.add_edge(0, 2);
  EXPECT_EQ(enumerate_bindings(dfg, cg, 3,
                               [](const RegisterBinding&) { return true; }),
            1u);
}

TEST(Enumerate, EarlyStopHonored) {
  Ex1Fixture f;
  std::size_t calls = 0;
  const std::size_t visited = enumerate_bindings(
      f.bench.design.dfg, f.cg, 3, [&](const RegisterBinding&) {
        return ++calls < 5;
      });
  EXPECT_EQ(visited, 5u);
}

TEST(Enumerate, HeuristicBindingIsInTheEnumeratedSpace) {
  Ex1Fixture f;
  auto rb = bind_registers_bist_aware(f.bench.design.dfg, f.cg, f.mb);
  // Canonicalize: sort members within registers and registers by first
  // variable (the enumerator's restricted-growth order sorts by smallest
  // vertex), then compare cost-equivalence via exact match search.
  bool found = false;
  (void)enumerate_bindings(
      f.bench.design.dfg, f.cg, rb.num_regs(),
      [&](const RegisterBinding& candidate) {
        bool same = candidate.num_regs() == rb.num_regs();
        for (const auto& v : f.bench.design.dfg.vars()) {
          if (!v.allocatable()) continue;
          for (const auto& w : f.bench.design.dfg.vars()) {
            if (!w.allocatable()) continue;
            const bool together_a = rb.reg_of[v.id] == rb.reg_of[w.id];
            const bool together_b =
                candidate.reg_of[v.id] == candidate.reg_of[w.id];
            same = same && (together_a == together_b);
          }
        }
        if (same) found = true;
        return !found;
      });
  EXPECT_TRUE(found);
}

TEST(Annealed, NeverWorseThanHeuristicOnBenchmarks) {
  AreaModel model;
  for (const auto& bench : paper_benchmarks()) {
    const Dfg& dfg = bench.design.dfg;
    auto lt = compute_lifetimes(dfg, *bench.design.schedule);
    auto cg = build_conflict_graph(dfg, lt);
    auto mb = ModuleBinding::bind(dfg, *bench.design.schedule,
                                  parse_module_spec(bench.module_spec));
    AnnealOptions opts;
    opts.iterations = 400;
    auto annealed = bind_registers_annealed(dfg, cg, mb, model, opts);
    annealed.validate(dfg, lt);
    const double heuristic_cost = binding_cost(
        dfg, mb, bind_registers_bist_aware(dfg, cg, mb), model);
    EXPECT_LE(binding_cost(dfg, mb, annealed, model),
              heuristic_cost + 1e-9)
        << bench.name;
  }
}

TEST(Annealed, FindsEx1GlobalOptimum) {
  Ex1Fixture f;
  AreaModel model;
  // Ground truth by enumeration.
  double best = 1e18;
  (void)enumerate_bindings(f.bench.design.dfg, f.cg, 3,
                           [&](const RegisterBinding& rb) {
                             if (rb.num_regs() == 3) {
                               best = std::min(
                                   best, binding_cost(f.bench.design.dfg,
                                                      f.mb, rb, model));
                             }
                             return true;
                           });
  AnnealOptions opts;
  opts.iterations = 2000;
  auto annealed = bind_registers_annealed(f.bench.design.dfg, f.cg, f.mb,
                                          model, opts);
  EXPECT_NEAR(binding_cost(f.bench.design.dfg, f.mb, annealed, model), best,
              1e-9);
}

TEST(Annealed, DeterministicForSeed) {
  Ex1Fixture f;
  AnnealOptions opts;
  opts.iterations = 300;
  auto a = bind_registers_annealed(f.bench.design.dfg, f.cg, f.mb,
                                   AreaModel{}, opts);
  auto b = bind_registers_annealed(f.bench.design.dfg, f.cg, f.mb,
                                   AreaModel{}, opts);
  EXPECT_EQ(a.to_string(f.bench.design.dfg), b.to_string(f.bench.design.dfg));
}

}  // namespace
}  // namespace lbist
