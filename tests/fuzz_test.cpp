// Tests for the differential fuzzing harness (src/fuzz/): corpus format
// round-trips, oracle cleanliness and determinism, the delta-debugging
// minimizer, and the mutation self-test (a deliberately broken binding must
// be caught and shrunk to a tiny reproducer).

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "binding/module_spec.hpp"
#include "core/report.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random_dfg.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/fuzz.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/oracle.hpp"
#include "passes/pipeline.hpp"
#include "support/check.hpp"

namespace lbist {
namespace {

// ---- Corpus format ------------------------------------------------------

CorpusEntry entry_from_benchmark(const Benchmark& bench) {
  CorpusEntry entry;
  entry.width = 4;
  entry.oracle = "none";
  entry.note = "built-in benchmark";
  entry.design = ParsedDfg{bench.design.dfg, bench.design.schedule};
  return entry;
}

TEST(Corpus, DumpParsesBackExactly) {
  CorpusEntry entry = entry_from_benchmark(make_ex1());
  entry.seed = 42;
  const std::string text = dump_corpus(entry);
  const CorpusEntry back = parse_corpus(text);
  EXPECT_EQ(back.seed, 42u);
  EXPECT_EQ(back.width, 4);
  EXPECT_EQ(back.oracle, "none");
  EXPECT_EQ(back.note, "built-in benchmark");
  EXPECT_EQ(dump_corpus(back), text);  // parse -> dump is the identity
}

TEST(Corpus, RejectsMissingMagicAndBadDirectives) {
  EXPECT_THROW(parse_corpus("dfg x\ninput a b\nop a1 + a b -> c @1\n"
                            "output c\n"),
               Error);
  CorpusEntry entry = entry_from_benchmark(make_ex1());
  std::string text = dump_corpus(entry);
  EXPECT_THROW(parse_corpus("#! frobnicate 3\n" + text), Error);
  EXPECT_THROW(parse_corpus("#! width 99\n" + text), Error);
}

TEST(Corpus, RejectsUnscheduledBody) {
  EXPECT_THROW(parse_corpus("#! lowbist-fuzz corpus v1\n"
                            "dfg x\ninput a b\nop a1 + a b -> c\noutput c\n"),
               Error);
}

class CorpusSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorpusSeeds, GeneratedDesignsRoundTripExactly) {
  const FuzzCase fc = make_fuzz_case(GetParam(), 0, 4, true);
  CorpusEntry entry;
  entry.seed = fc.case_seed;
  entry.width = fc.width;
  entry.design = ParsedDfg{fc.design.dfg, fc.design.schedule};
  const std::string text = dump_corpus(entry);
  const CorpusEntry back = parse_corpus(text);
  EXPECT_EQ(dump_corpus(back), text);
  EXPECT_EQ(back.design.dfg.num_ops(), fc.design.dfg.num_ops());
  EXPECT_EQ(back.design.dfg.loop_ties().size(),
            fc.design.dfg.loop_ties().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusSeeds,
                         ::testing::Range<std::uint64_t>(1, 16));

// ---- Generator shapes ---------------------------------------------------

TEST(FuzzCaseGen, DeterministicPerSeed) {
  const FuzzCase a = make_fuzz_case(123, 7, 4, true);
  const FuzzCase b = make_fuzz_case(123, 7, 4, true);
  EXPECT_EQ(print_dfg(a.design.dfg, &a.design.schedule),
            print_dfg(b.design.dfg, &b.design.schedule));
  EXPECT_EQ(a.width, b.width);
  const FuzzCase c = make_fuzz_case(123, 8, 4, true);
  EXPECT_NE(print_dfg(a.design.dfg, &a.design.schedule),
            print_dfg(c.design.dfg, &c.design.schedule));
}

TEST(FuzzCaseGen, CoversShapeFamilies) {
  // Across a modest window the generator must exercise loop ties, chains
  // (via chain_probability) and several widths.
  bool saw_ties = false, saw_chain = false;
  std::set<int> widths;
  for (int i = 0; i < 64; ++i) {
    const FuzzCase fc = make_fuzz_case(99, i, 4, true);
    saw_ties |= !fc.design.dfg.loop_ties().empty();
    saw_chain |= fc.gen.chain_probability > 0.0;
    widths.insert(fc.width);
  }
  EXPECT_TRUE(saw_ties);
  EXPECT_TRUE(saw_chain);
  EXPECT_GE(widths.size(), 3u);
}

TEST(RandomDfgKnobs, ChainShapeMakesDeepSingleOpSteps) {
  RandomDfgOptions opts;
  opts.seed = 5;
  opts.num_steps = 8;
  opts.ops_per_step = 1;
  opts.chain_probability = 1.0;
  opts.reuse_probability = 1.0;
  const RandomDfg rd = make_random_dfg(opts);
  // With full chain bias every op past the first consumes the previous
  // op's result.
  for (std::size_t i = 1; i < static_cast<std::size_t>(opts.num_steps);
       ++i) {
    const auto& op = rd.dfg.ops()[i];
    const auto& prev = rd.dfg.ops()[i - 1];
    EXPECT_TRUE(op.lhs == prev.result || op.rhs == prev.result)
        << "op " << i << " does not extend the chain";
  }
}

TEST(RandomDfgKnobs, LoopTiesAreValidForTheLoopBinder) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RandomDfgOptions opts;
    opts.seed = seed;
    opts.loop_ties = 2;
    const RandomDfg rd = make_random_dfg(opts);
    for (const auto& [carried, init] : rd.dfg.loop_ties()) {
      EXPECT_TRUE(rd.dfg.var(carried).is_output);
      EXPECT_TRUE(rd.dfg.var(init).is_input());
      // Non-overlap: every read of init happens no later than the step
      // that writes carried.
      const int def_step = rd.schedule.step(rd.dfg.var(carried).def);
      for (OpId use : rd.dfg.var(init).uses) {
        EXPECT_LE(rd.schedule.step(use), def_step);
      }
    }
  }
}

// ---- Oracles ------------------------------------------------------------

TEST(Oracles, CleanOnPaperBenchmarks) {
  for (const Benchmark& bench :
       {make_ex1(), make_ex2(), make_tseng1(), make_paulin()}) {
    OracleOptions oo;
    const OracleVerdict verdict = run_oracles(
        bench.design.dfg, *bench.design.schedule, oo);
    for (const auto& f : verdict.failures) {
      ADD_FAILURE() << bench.name << ": " << f.oracle << ": " << f.detail;
    }
  }
}

TEST(Oracles, DigestIsDeterministic) {
  const FuzzCase fc = make_fuzz_case(7, 3, 4, true);
  OracleOptions oo;
  oo.width = fc.width;
  oo.stimulus_seed = fc.case_seed;
  const auto a = run_oracles(fc.design.dfg, fc.design.schedule, oo);
  const auto b = run_oracles(fc.design.dfg, fc.design.schedule, oo);
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.digest, b.digest);
}

TEST(Oracles, InjectedBindingBugIsCaught) {
  // A two-input design always has a register conflict to corrupt.
  const auto parsed = parse_dfg(R"(
dfg tiny
input a b
op add1 + a b -> c @1
output c
)");
  OracleOptions oo;
  oo.inject_binding_bug = true;
  const auto verdict = run_oracles(parsed.dfg, *parsed.schedule, oo);
  EXPECT_TRUE(verdict.failed("binding-valid:trad"));
  OracleOptions clean;
  EXPECT_TRUE(run_oracles(parsed.dfg, *parsed.schedule, clean).ok());
}

// ---- Minimizer ----------------------------------------------------------

TEST(Minimizer, ShrinksToThePredicateCore) {
  // Failure model: "the design contains a division" — minimal reproducer
  // is a single div op.
  RandomDfgOptions opts;
  opts.seed = 11;
  opts.num_steps = 6;
  opts.ops_per_step = 3;
  opts.kinds = {OpKind::Add, OpKind::Mul, OpKind::Div, OpKind::Sub};
  const RandomDfg rd = make_random_dfg(opts);
  auto has_div = [](const Dfg& d, const Schedule&) {
    for (const auto& op : d.ops()) {
      if (op.kind == OpKind::Div) return true;
    }
    return false;
  };
  ASSERT_TRUE(has_div(rd.dfg, rd.schedule)) << "seed produced no div";
  const MinimizeResult min = minimize_dfg(rd.dfg, rd.schedule, has_div);
  EXPECT_EQ(min.final_ops, 1u);
  EXPECT_EQ(min.dfg.ops()[0].kind, OpKind::Div);
  EXPECT_TRUE(has_div(min.dfg, min.schedule));
  min.dfg.validate();
}

TEST(Minimizer, RefusesAPassingDesign) {
  const auto parsed = parse_dfg(R"(
dfg ok
input a b
op add1 + a b -> c @1
output c
)");
  auto never = [](const Dfg&, const Schedule&) { return false; };
  EXPECT_THROW((void)minimize_dfg(parsed.dfg, *parsed.schedule, never),
               Error);
}

TEST(Minimizer, OutputStillFailsOriginalOracle) {
  // End-to-end self-test property: minimize a real oracle failure (the
  // injected binding bug) and check the minimized design still fails the
  // same oracle.
  const FuzzCase fc = make_fuzz_case(31, 1, 4, false);
  OracleOptions oo;
  oo.width = fc.width;
  oo.inject_binding_bug = true;
  const auto verdict = run_oracles(fc.design.dfg, fc.design.schedule, oo);
  ASSERT_FALSE(verdict.ok());
  const std::string oracle = verdict.failures.front().oracle;
  auto still_fails = [&](const Dfg& d, const Schedule& s) {
    return run_oracles(d, s, oo).failed(oracle);
  };
  const MinimizeResult min =
      minimize_dfg(fc.design.dfg, fc.design.schedule, still_fails);
  EXPECT_LE(min.final_ops, 8u);
  EXPECT_TRUE(still_fails(min.dfg, min.schedule));
}

// ---- Driver -------------------------------------------------------------

TEST(FuzzDriver, CleanAndDeterministicAcrossJobCounts) {
  FuzzOptions fo;
  fo.seed = 2026;
  fo.cases = 40;
  fo.jobs = 1;
  const FuzzSummary a = run_fuzz(fo);
  EXPECT_EQ(a.cases, 40);
  EXPECT_EQ(a.failures, 0);
  fo.jobs = 4;
  const FuzzSummary b = run_fuzz(fo);
  EXPECT_EQ(b.digest, a.digest);
  EXPECT_EQ(b.failures, 0);
  fo.seed = 2027;
  fo.jobs = 1;
  const FuzzSummary c = run_fuzz(fo);
  EXPECT_NE(c.digest, a.digest) << "digest ignores the seed";
}

TEST(FuzzDriver, MutationSelfTestCatchesAndMinimizes) {
  FuzzOptions fo;
  fo.seed = 5;
  fo.cases = 12;
  fo.jobs = 2;
  fo.inject_binding_bug = true;
  fo.max_reports = 4;
  const FuzzSummary summary = run_fuzz(fo);
  ASSERT_GT(summary.failures, 0);
  ASSERT_FALSE(summary.reports.empty());
  for (const auto& r : summary.reports) {
    EXPECT_EQ(r.oracle, "binding-valid:trad");
    EXPECT_LE(r.minimized_ops, 8u);
    // The written reproducer replays: clean normally, failing under the
    // injection flag (the corrupted binding is the bug being modeled).
    const CorpusEntry entry = parse_corpus(r.corpus_text);
    EXPECT_EQ(entry.oracle, r.oracle);
    EXPECT_TRUE(replay_corpus_entry(entry, /*inject_binding_bug=*/true)
                    .failed(r.oracle));
    EXPECT_TRUE(replay_corpus_entry(entry).ok());
  }
}

TEST(FuzzDriver, ReplaysBenchmarkCorpusClean) {
  CorpusEntry entry = entry_from_benchmark(make_tseng1());
  const std::string text = dump_corpus(entry);
  const OracleVerdict verdict = replay_corpus_entry(parse_corpus(text));
  EXPECT_TRUE(verdict.ok());
}

// ---- IR snapshots on the checked-in corpus seeds ------------------------

// Every checked-in reproducer seed must round-trip through the pass
// pipeline's IR snapshots at every stage boundary, bit for bit — the same
// property the fuzzer's snapshot-roundtrip oracle enforces on generated
// designs (src/fuzz/oracle.cpp).
TEST(FuzzDriver, CheckedInCorpusSeedsRoundTripThroughSnapshots) {
  const PassPipeline& pipeline = PassPipeline::standard();
  for (const char* name : {"ex1.corpus", "loop-tied.corpus"}) {
    std::ifstream in(std::string(LOWBIST_SOURCE_DIR) + "/examples/corpus/" +
                     name);
    ASSERT_TRUE(in.good()) << name;
    std::ostringstream buf;
    buf << in.rdbuf();
    const CorpusEntry entry = parse_corpus(buf.str());
    ASSERT_TRUE(entry.design.schedule.has_value()) << name;
    const Dfg& dfg = entry.design.dfg;
    const Schedule& sched = *entry.design.schedule;
    const auto protos = minimal_module_spec(dfg, sched);

    for (BinderKind kind : {BinderKind::BistAware, BinderKind::LoopAware}) {
      SynthesisOptions opts;
      opts.binder = kind;
      opts.area.bit_width = entry.width;
      SynthState full(dfg, sched, protos, opts);
      pipeline.run(full);
      const std::string want_text = full.result.describe(dfg);
      const std::string want_json = report_json(dfg, full.result).dump();
      for (std::size_t stage = 0; stage <= pipeline.num_passes(); ++stage) {
        SynthState state(dfg, sched, protos, opts);
        pipeline.run(state, stage);
        SynthState resumed =
            pipeline.restore(Json::parse(pipeline.snapshot(state).dump()));
        pipeline.run(resumed);
        EXPECT_EQ(resumed.result.describe(resumed.dfg()), want_text)
            << name << " stage " << stage;
        EXPECT_EQ(report_json(resumed.dfg(), resumed.result).dump(),
                  want_json)
            << name << " stage " << stage;
      }
    }
  }
}

}  // namespace
}  // namespace lbist
