// Unit tests for the DFG library: graph construction, schedules, lifetime
// analysis, the textual format and the benchmark reconstructions.

#include <gtest/gtest.h>

#include "dfg/benchmarks.hpp"
#include "dfg/dfg.hpp"
#include "dfg/lifetime.hpp"
#include "dfg/parse.hpp"
#include "dfg/random_dfg.hpp"
#include "dfg/schedule.hpp"
#include "support/check.hpp"

namespace lbist {
namespace {

Dfg tiny_dfg() {
  Dfg dfg("tiny");
  VarId a = dfg.add_input("a");
  VarId b = dfg.add_input("b");
  VarId c = dfg.add_op(OpKind::Add, a, b, "c", "add1");
  VarId d = dfg.add_op(OpKind::Mul, c, a, "d", "mul1");
  dfg.mark_output(d);
  dfg.validate();
  return dfg;
}

TEST(OpKind, SymbolRoundTrip) {
  for (OpKind k : {OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Div,
                   OpKind::And, OpKind::Or, OpKind::Xor, OpKind::Lt,
                   OpKind::Gt}) {
    EXPECT_EQ(kind_from_symbol(symbol(k)), k);
  }
  EXPECT_THROW((void)kind_from_symbol("%"), Error);
}

TEST(OpKind, Commutativity) {
  EXPECT_TRUE(is_commutative(OpKind::Add));
  EXPECT_TRUE(is_commutative(OpKind::Mul));
  EXPECT_TRUE(is_commutative(OpKind::Xor));
  EXPECT_FALSE(is_commutative(OpKind::Sub));
  EXPECT_FALSE(is_commutative(OpKind::Div));
  EXPECT_FALSE(is_commutative(OpKind::Lt));
}

TEST(Dfg, BuildAndQuery) {
  Dfg dfg = tiny_dfg();
  EXPECT_EQ(dfg.num_ops(), 2u);
  EXPECT_EQ(dfg.num_vars(), 4u);
  auto c = dfg.find_var("c");
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(dfg.var(*c).def.valid());
  EXPECT_EQ(dfg.var(*c).uses.size(), 1u);
  auto a = dfg.find_var("a");
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(dfg.var(*a).is_input());
  EXPECT_EQ(dfg.var(*a).uses.size(), 2u);
}

TEST(Dfg, DuplicateNamesRejected) {
  Dfg dfg("dup");
  dfg.add_input("a");
  EXPECT_THROW(dfg.add_input("a"), Error);
}

TEST(Dfg, DeadResultRejectedByValidate) {
  Dfg dfg("dead");
  VarId a = dfg.add_input("a");
  dfg.add_op(OpKind::Add, a, a, "t");  // t never used, not an output
  EXPECT_THROW(dfg.validate(), Error);
}

TEST(Dfg, ControlOnlyMustBeOpResult) {
  Dfg dfg("ctl");
  VarId a = dfg.add_input("a");
  EXPECT_THROW(dfg.mark_control_only(a), Error);
}

TEST(Dfg, SameOperandTwiceRecordsOneUse) {
  Dfg dfg("sq");
  VarId a = dfg.add_input("a");
  VarId r = dfg.add_op(OpKind::Mul, a, a, "r");
  dfg.mark_output(r);
  EXPECT_EQ(dfg.var(a).uses.size(), 1u);
}

TEST(Dfg, ToDotMentionsOpsAndVars) {
  const std::string dot = tiny_dfg().to_dot();
  EXPECT_NE(dot.find("add1"), std::string::npos);
  EXPECT_NE(dot.find("mul1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"c\""), std::string::npos);
}

TEST(Schedule, RejectsChaining) {
  Dfg dfg = tiny_dfg();
  IdMap<OpId, int> steps(dfg.num_ops());
  steps[OpId{0}] = 1;
  steps[OpId{1}] = 1;  // mul1 reads add1's result in the same step
  EXPECT_THROW(Schedule(dfg, std::move(steps)), Error);
}

TEST(Schedule, AcceptsValidAndComputesSteps) {
  Dfg dfg = tiny_dfg();
  IdMap<OpId, int> steps(dfg.num_ops());
  steps[OpId{0}] = 1;
  steps[OpId{1}] = 3;
  Schedule s(dfg, std::move(steps));
  EXPECT_EQ(s.num_steps(), 3);
  EXPECT_EQ(s.ops_in_step(dfg, 3).size(), 1u);
  EXPECT_TRUE(s.ops_in_step(dfg, 2).empty());
}

TEST(Lifetime, LazyInputsAndOutputHold) {
  Dfg dfg = tiny_dfg();
  IdMap<OpId, int> steps(dfg.num_ops());
  steps[OpId{0}] = 1;
  steps[OpId{1}] = 2;
  Schedule s(dfg, std::move(steps));
  auto lt = compute_lifetimes(dfg, s);
  const VarId a = *dfg.find_var("a");
  const VarId c = *dfg.find_var("c");
  const VarId d = *dfg.find_var("d");
  EXPECT_EQ(lt[a].birth, 0);
  EXPECT_EQ(lt[a].death, 2);  // used by mul1 at step 2
  EXPECT_EQ(lt[c].birth, 1);
  EXPECT_EQ(lt[c].death, 2);
  EXPECT_EQ(lt[d].birth, 2);
  EXPECT_EQ(lt[d].death, 3);  // output held one past schedule end
}

TEST(Lifetime, OverlapSemantics) {
  LiveInterval a{0, 2};
  LiveInterval b{2, 4};
  EXPECT_FALSE(a.overlaps(b));  // half-open: write at end of 2 is fine
  LiveInterval c{1, 3};
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(b));
}

TEST(Lifetime, MaxLiveCountsAllocatableOnly) {
  auto bench = make_paulin();
  auto lt = compute_lifetimes(bench.design.dfg, *bench.design.schedule);
  // Port-resident inputs and the control-only compare result are excluded;
  // the reconstruction needs exactly 4 registers (Table I).
  EXPECT_EQ(max_live(bench.design.dfg, lt), 4);
}

TEST(Parse, RoundTrip) {
  auto parsed = parse_dfg(R"(
dfg t
input a b
op add1 + a b -> c @1
op mul1 * c a -> d @2
output d
)");
  ASSERT_TRUE(parsed.schedule.has_value());
  EXPECT_EQ(parsed.dfg.num_ops(), 2u);
  const std::string printed = print_dfg(parsed.dfg, &*parsed.schedule);
  auto reparsed = parse_dfg(printed);
  EXPECT_EQ(reparsed.dfg.num_vars(), parsed.dfg.num_vars());
  EXPECT_EQ(print_dfg(reparsed.dfg, &*reparsed.schedule), printed);
}

TEST(Parse, ErrorsCarryLineNumbers) {
  try {
    (void)parse_dfg("dfg t\ninput a\nop bad + a missing -> r @1\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Parse, PartialScheduleRejected) {
  EXPECT_THROW((void)parse_dfg(R"(
dfg t
input a b
op add1 + a b -> c @1
op mul1 * c a -> d
output d
)"),
               Error);
}

TEST(Parse, PortInputAndControl) {
  auto parsed = parse_dfg(R"(
dfg t
portinput a
input b
op lt1 < a b -> c @1
op add1 + b b -> d @1
control c
output d
)");
  EXPECT_TRUE(parsed.dfg.var(*parsed.dfg.find_var("a")).port_resident);
  EXPECT_TRUE(parsed.dfg.var(*parsed.dfg.find_var("c")).control_only);
  EXPECT_FALSE(parsed.dfg.var(*parsed.dfg.find_var("c")).allocatable());
}

TEST(Benchmarks, Ex1StructuralInvariants) {
  auto bench = make_ex1();
  const Dfg& dfg = bench.design.dfg;
  EXPECT_EQ(dfg.num_vars(), 8u);  // a..h as in the paper's Fig. 2
  EXPECT_EQ(dfg.num_ops(), 4u);
  auto lt = compute_lifetimes(dfg, *bench.design.schedule);
  EXPECT_EQ(max_live(dfg, lt), 3);  // paper: minimum of 3 registers
}

TEST(Benchmarks, AllPaperBenchmarksValidateAndMatchRegisterCounts) {
  const std::vector<std::pair<std::string, int>> expected = {
      {"ex1", 3}, {"ex2", 5}, {"Tseng1", 5}, {"Tseng2", 5}, {"Paulin", 4}};
  auto benches = paper_benchmarks();
  ASSERT_EQ(benches.size(), expected.size());
  for (std::size_t i = 0; i < benches.size(); ++i) {
    EXPECT_EQ(benches[i].name, expected[i].first);
    auto lt = compute_lifetimes(benches[i].design.dfg,
                                *benches[i].design.schedule);
    EXPECT_EQ(max_live(benches[i].design.dfg, lt), expected[i].second)
        << benches[i].name;
  }
}

TEST(Benchmarks, FirHasExpectedShape) {
  Dfg fir = make_fir(8);
  // 8 multiplies + 7 adds.
  EXPECT_EQ(fir.num_ops(), 15u);
  fir.validate();
}

TEST(RandomDfg, DeterministicForSeed) {
  RandomDfgOptions opts;
  opts.seed = 42;
  auto a = make_random_dfg(opts);
  auto b = make_random_dfg(opts);
  EXPECT_EQ(print_dfg(a.dfg, &a.schedule), print_dfg(b.dfg, &b.schedule));
}

TEST(RandomDfg, ProducesValidScheduledDesigns) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomDfgOptions opts;
    opts.seed = seed;
    auto rd = make_random_dfg(opts);
    rd.dfg.validate();  // no dead results, operands exist
    EXPECT_GE(rd.schedule.num_steps(), opts.num_steps);
  }
}

}  // namespace
}  // namespace lbist
