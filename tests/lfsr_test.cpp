// Unit tests for the LFSR / MISR / CBILBO register models.

#include <gtest/gtest.h>

#include <set>

#include "support/check.hpp"
#include "support/lfsr.hpp"

namespace lbist {
namespace {

class LfsrWidths : public ::testing::TestWithParam<int> {};

TEST_P(LfsrWidths, MaximalPeriod) {
  const int w = GetParam();
  Lfsr lfsr(w, 1);
  const std::uint64_t period = lfsr.period();
  std::uint64_t count = 0;
  do {
    lfsr.step();
    ++count;
  } while (lfsr.state() != 1 && count <= period);
  EXPECT_EQ(count, period) << "width " << w;
}

TEST_P(LfsrWidths, VisitsEveryNonZeroState) {
  const int w = GetParam();
  if (w > 12) GTEST_SKIP() << "exhaustive check kept to small widths";
  Lfsr lfsr(w, 1);
  std::set<std::uint32_t> seen;
  for (std::uint64_t i = 0; i < lfsr.period(); ++i) {
    seen.insert(lfsr.state());
    lfsr.step();
  }
  EXPECT_EQ(seen.size(), lfsr.period());
  EXPECT_EQ(seen.count(0), 0u);
}

TEST(LfsrSeed, RejectsAllZeroSeed) {
  // The all-zero state is the lock-up state: a TPG seeded with it would
  // generate constant zero patterns forever, wedging the self-test.
  EXPECT_THROW(Lfsr(4, 0), Error);
  EXPECT_THROW(Lfsr(32, 0), Error);
}

TEST(LfsrSeed, RejectsSeedThatMasksToZero) {
  // Non-zero seed whose low `width` bits are zero is just as dead.
  EXPECT_THROW(Lfsr(4, 0xF0), Error);
  EXPECT_THROW(Lfsr(8, 0x100), Error);
  // ...while any seed with a low bit set is fine.
  EXPECT_NO_THROW(Lfsr(4, 0xF1));
}

TEST(LfsrSeed, CbilboRejectsZeroGeneratorSeed) {
  EXPECT_THROW(Cbilbo(8, 0), Error);
  EXPECT_NO_THROW(Cbilbo(8, 1));  // zero signature seed is fine (MISR)
}

INSTANTIATE_TEST_SUITE_P(SmallWidths, LfsrWidths,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 10, 12, 16));

TEST(Lfsr, ZeroSeedRejected) {
  EXPECT_THROW(Lfsr(8, 0), Error);
}

TEST(Lfsr, UnsupportedWidthRejected) {
  EXPECT_THROW((void)primitive_taps(1), Error);
  EXPECT_THROW((void)primitive_taps(33), Error);
}

TEST(Lfsr, DeterministicSequence) {
  Lfsr a(8, 0x5), b(8, 0x5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.step(), b.step());
  }
}

TEST(Lfsr, DifferentSeedsDecorrelate) {
  Lfsr a(8, 0x5), b(8, 0x13);
  int equal = 0;
  for (int i = 0; i < 255; ++i) {
    if (a.step() == b.step()) ++equal;
  }
  // Same maximal sequence, different phase: a few coincidences at most.
  EXPECT_LT(equal, 16);
}

TEST(Misr, SignatureDependsOnEveryWord) {
  Misr a(8), b(8);
  for (int i = 0; i < 10; ++i) {
    a.absorb(static_cast<std::uint32_t>(i));
    b.absorb(static_cast<std::uint32_t>(i == 5 ? 99 : i));
  }
  EXPECT_NE(a.signature(), b.signature());
}

TEST(Misr, SignatureDependsOnOrder) {
  Misr a(8), b(8);
  a.absorb(1);
  a.absorb(2);
  b.absorb(2);
  b.absorb(1);
  EXPECT_NE(a.signature(), b.signature());
}

TEST(Misr, SingleBitErrorAlwaysDetectedInShortRun) {
  // With run length << period, a single corrupted word always changes the
  // signature (no aliasing window).
  for (int bit = 0; bit < 8; ++bit) {
    Misr good(8), bad(8);
    for (int i = 0; i < 20; ++i) {
      const auto w = static_cast<std::uint32_t>(3 * i + 1);
      good.absorb(w);
      bad.absorb(i == 10 ? (w ^ (1u << bit)) : w);
    }
    EXPECT_NE(good.signature(), bad.signature()) << "bit " << bit;
  }
}

TEST(Cbilbo, GeneratesAndCompactsConcurrently) {
  Cbilbo reg(8, 0x5);
  Lfsr ref_gen(8, 0x5);
  Misr ref_sig(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(reg.pattern(), ref_gen.state());
    const std::uint32_t response = reg.pattern() ^ 0xA5u;
    reg.step(response);
    ref_sig.absorb(response);
    ref_gen.step();
  }
  EXPECT_EQ(reg.signature(), ref_sig.signature());
}

}  // namespace
}  // namespace lbist
