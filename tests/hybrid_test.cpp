// Hybrid-BIST subsystem tests (ISSUE 7 tentpole): the three-phase test
// session, the reseed seed search, the evolved baseline, the Pareto sweep
// engine, and its determinism across thread counts.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "binding/module_spec.hpp"
#include "core/compare.hpp"
#include "dfg/benchmarks.hpp"
#include "gates/gate_fault_sim.hpp"
#include "gates/gate_selftest.hpp"
#include "hybrid/eval.hpp"
#include "hybrid/pareto.hpp"
#include "hybrid/reseed.hpp"
#include "hybrid/session.hpp"
#include "passes/pipeline.hpp"
#include "service/metrics.hpp"
#include "support/check.hpp"

namespace lbist {
namespace {

constexpr int kWidth = 8;

std::vector<Benchmark> paper_benchmarks() {
  std::vector<Benchmark> out;
  out.push_back(make_ex1());
  out.push_back(make_ex2());
  out.push_back(make_tseng1());
  out.push_back(make_tseng2());
  out.push_back(make_paulin());
  return out;
}

// ---- Reseed seed search --------------------------------------------------

TEST(HybridReseed, FindsPatternsForHardAdderFaults) {
  const ModuleNetlist module = build_module(OpKind::Add, kWidth);
  // Short PR phase -> plenty of hard faults to chase.
  const GateBistDetail detail = simulate_gate_bist_seeded(
      module, chip_seed(0, kWidth), chip_seed(1, kWidth), 8);
  ASSERT_FALSE(detail.undetected.empty());
  int found = 0;
  for (const GateFault& fault : detail.undetected) {
    const auto seed = find_detecting_pattern(module, fault);
    if (seed.has_value()) {
      ++found;
      EXPECT_TRUE(pattern_detects_fault(module, seed->a, seed->b, fault));
      continue;
    }
    // A miss must mean the fault is genuinely redundant: exhaustively no
    // (a, b) pattern distinguishes it (the adder's constant-0 tie cell
    // and its shadow are the only such faults).
    bool any = false;
    for (std::uint32_t a = 0; a < 256 && !any; ++a) {
      for (std::uint32_t b = 0; b < 256 && !any; ++b) {
        any = pattern_detects_fault(module, a, b, fault);
      }
    }
    EXPECT_FALSE(any) << "missed a detectable fault at node " << fault.node;
  }
  EXPECT_GT(found, 0);
}

TEST(HybridReseed, SearchIsDeterministic) {
  const ModuleNetlist module = build_module(OpKind::Mul, kWidth);
  const GateBistDetail detail = simulate_gate_bist_seeded(
      module, chip_seed(0, kWidth), chip_seed(1, kWidth), 62);
  ASSERT_FALSE(detail.undetected.empty());
  const GateFault fault = detail.undetected.front();
  const auto first = find_detecting_pattern(module, fault);
  const auto second = find_detecting_pattern(module, fault);
  ASSERT_EQ(first.has_value(), second.has_value());
  if (first.has_value()) {
    EXPECT_EQ(first->a, second->a);
    EXPECT_EQ(first->b, second->b);
  }
}

// ---- Session model -------------------------------------------------------

TEST(HybridSession, PseudoRandomModeReproducesGateSelfTest) {
  const auto row = compare_benchmark(make_ex1());
  const GateSelfTestResult gate =
      run_gate_self_test(row.testable.datapath, row.testable.bist, 250,
                         kWidth);
  HybridConfig pr;
  pr.mode = HybridMode::PseudoRandom;
  pr.pr_patterns = 250;
  const HybridSessionResult hybrid = run_hybrid_session(
      row.testable.datapath, row.testable.bist, pr, kWidth);
  EXPECT_EQ(hybrid.faults_total, gate.faults_injected);
  EXPECT_EQ(hybrid.faults_detected, gate.faults_detected);
  EXPECT_EQ(hybrid.reseeds_used, 0);
  EXPECT_EQ(hybrid.topups_used, 0);
}

// The headline property: on every paper benchmark, reseed+topup at a
// quarter of the pseudo-random budget reaches at least the same coverage
// in strictly fewer clocks — i.e. it strictly dominates the pure
// pseudo-random session the paper's plan implies.
TEST(HybridSession, ReseedTopupDominatesPurePseudoRandom) {
  HybridConfig pr;
  pr.pr_patterns = 250;
  HybridConfig topup;
  topup.name = "hybrid+topup";
  topup.mode = HybridMode::ReseedTopup;
  topup.pr_patterns = 62;
  topup.max_reseeds = 16;
  for (const auto& row : compare_paper_benchmarks()) {
    const HybridSessionResult full = run_hybrid_session(
        row.testable.datapath, row.testable.bist, pr, kWidth);
    const HybridSessionResult hybrid = run_hybrid_session(
        row.testable.datapath, row.testable.bist, topup, kWidth);
    EXPECT_GE(hybrid.coverage(), full.coverage()) << row.name;
    EXPECT_LT(hybrid.test_clocks, full.test_clocks) << row.name;
  }
}

TEST(HybridSession, EvolvedSeedsNeverLoseToChipSeeds) {
  const auto row = compare_benchmark(make_paulin());
  HybridConfig pr;
  pr.pr_patterns = 62;
  HybridConfig evolved = pr;
  evolved.name = "evolve";
  evolved.mode = HybridMode::Evolved;
  const HybridSessionResult base = run_hybrid_session(
      row.testable.datapath, row.testable.bist, pr, kWidth);
  const HybridSessionResult ga = run_hybrid_session(
      row.testable.datapath, row.testable.bist, evolved, kWidth);
  EXPECT_GE(ga.faults_detected, base.faults_detected);
  EXPECT_EQ(ga.test_clocks, base.test_clocks);  // same clock budget
}

// ---- Pareto sweep --------------------------------------------------------

TEST(HybridPareto, FrontIsNonEmptyOnEveryPaperBenchmark) {
  for (const Benchmark& bench : paper_benchmarks()) {
    HybridSweepOptions opts;
    opts.area.bit_width = kWidth;
    opts.patterns = 250;
    const auto points =
        explore_hybrid(bench.design.dfg, *bench.design.schedule,
                       {bench.module_spec}, opts);
    ASSERT_FALSE(points.empty()) << bench.name;
    const auto front = hybrid_pareto_front(points);
    EXPECT_FALSE(front.empty()) << bench.name;
    for (const HybridPoint& p : points) {
      EXPECT_GT(p.faults_total, 0) << bench.name;
      EXPECT_GT(p.test_length, 0) << bench.name;
      EXPECT_GT(p.fault_coverage, 0.5) << bench.name;
    }
  }
}

TEST(HybridPareto, SweepIsBitIdenticalAcrossThreadCounts) {
  const Benchmark bench = make_ex2();
  HybridSweepOptions serial;
  serial.area.bit_width = kWidth;
  serial.patterns = 250;
  serial.jobs = 1;
  HybridSweepOptions threaded = serial;
  threaded.jobs = 4;
  const Json a = hybrid_points_json(explore_hybrid(
      bench.design.dfg, *bench.design.schedule, {bench.module_spec},
      serial));
  const Json b = hybrid_points_json(explore_hybrid(
      bench.design.dfg, *bench.design.schedule, {bench.module_spec},
      threaded));
  EXPECT_EQ(a.dump(), b.dump());
}

TEST(HybridPareto, ReseedingConfigDominatesPureProOnSomeBenchmark) {
  // The acceptance property at sweep level: a reseeding configuration
  // strictly dominates the full-budget pseudo-random arm of the same
  // binder on at least one benchmark.
  bool dominated = false;
  for (const Benchmark& bench : paper_benchmarks()) {
    HybridSweepOptions opts;
    opts.area.bit_width = kWidth;
    opts.patterns = 250;
    opts.binders = {BinderKind::BistAware};
    const auto points =
        explore_hybrid(bench.design.dfg, *bench.design.schedule,
                       {bench.module_spec}, opts);
    const HybridPoint* pr = nullptr;
    for (const HybridPoint& p : points) {
      if (p.config == "pr") pr = &p;
    }
    ASSERT_NE(pr, nullptr) << bench.name;
    for (const HybridPoint& p : points) {
      if ((p.config == "hybrid" || p.config == "hybrid+topup") &&
          hybrid_dominates(p, *pr)) {
        dominated = true;
      }
    }
    if (dominated) break;
  }
  EXPECT_TRUE(dominated);
}

TEST(HybridPareto, JsonReportHasTheContractShape) {
  const Benchmark bench = make_ex1();
  HybridSweepOptions opts;
  opts.area.bit_width = kWidth;
  const auto points = explore_hybrid(
      bench.design.dfg, *bench.design.schedule, {bench.module_spec}, opts);
  const Json j = hybrid_points_json(points);
  ASSERT_TRUE(j.contains("objectives"));
  EXPECT_EQ(j.at("objectives").size(), 3u);
  ASSERT_TRUE(j.contains("points"));
  ASSERT_GT(j.at("points").size(), 0u);
  bool any_front = false;
  for (std::size_t i = 0; i < j.at("points").size(); ++i) {
    const Json& p = j.at("points").at(i);
    for (const char* key : {"label", "binder", "config", "bist_area",
                            "fault_coverage", "test_length", "pareto"}) {
      EXPECT_TRUE(p.contains(key)) << key;
    }
    any_front = any_front || p.at("pareto").as_bool();
  }
  EXPECT_TRUE(any_front);
}

TEST(HybridPareto, MetricsAreRecorded) {
  const Benchmark bench = make_ex1();
  MetricsRegistry metrics;
  HybridSweepOptions opts;
  opts.area.bit_width = kWidth;
  opts.metrics = &metrics;
  const auto points = explore_hybrid(
      bench.design.dfg, *bench.design.schedule, {bench.module_spec}, opts);
  const Json dump = metrics.to_json();
  EXPECT_EQ(dump.at("counters").at("hybrid_points").as_int(),
            static_cast<int>(points.size()));
  EXPECT_TRUE(dump.at("histograms").contains("hybrid_coverage_percent"));
  EXPECT_TRUE(dump.at("histograms").contains("hybrid_test_length_clocks"));
}

// ---- Config serialization and pipeline evaluation ------------------------

TEST(HybridEval, ConfigRoundTripsThroughJson) {
  HybridConfig config;
  config.name = "custom";
  config.mode = HybridMode::ReseedTopup;
  config.pr_patterns = 99;
  config.max_reseeds = 7;
  config.reseed_burst = 5;
  config.evolve.population = 12;
  const Json j = hybrid_config_to_json(config);
  const HybridConfig back = hybrid_config_from_json(j);
  EXPECT_EQ(hybrid_config_to_json(back).dump(), j.dump());
  EXPECT_THROW(hybrid_config_from_json(
                   Json::object().set("mode", Json::string("psychic"))),
               Error);
  EXPECT_THROW(hybrid_config_from_json(
                   Json::object().set("pr_patterns", Json::number(0))),
               Error);
}

TEST(HybridEval, EvaluateStoresReportInAuxAndSnapshotCarriesIt) {
  const Benchmark bench = make_ex1();
  const auto protos = parse_module_spec(bench.module_spec);
  SynthesisOptions so;
  so.area.bit_width = kWidth;
  SynthState state(bench.design.dfg, *bench.design.schedule, protos, so);

  HybridConfig config;
  config.name = "hybrid+topup";
  config.mode = HybridMode::ReseedTopup;
  config.pr_patterns = 62;
  const Json report = evaluate_hybrid(state, config);
  EXPECT_GT(report.at("bist_area").as_number(), 0.0);
  EXPECT_GT(report.at("result").at("fault_coverage").as_number(), 0.9);
  ASSERT_TRUE(state.aux.count("hybrid"));

  // The aux slot rides through snapshot/restore byte-identically.
  const PassPipeline& pipeline = PassPipeline::standard();
  const Json snap = pipeline.snapshot(state);
  ASSERT_TRUE(snap.contains("aux"));
  SynthState restored = pipeline.restore(snap);
  ASSERT_TRUE(restored.aux.count("hybrid"));
  EXPECT_EQ(restored.aux.at("hybrid").dump(), report.dump());
}

TEST(HybridEval, SnapshotWithoutAuxStaysLean) {
  const Benchmark bench = make_ex1();
  const auto protos = parse_module_spec(bench.module_spec);
  SynthState state(bench.design.dfg, *bench.design.schedule, protos,
                   SynthesisOptions{});
  const PassPipeline& pipeline = PassPipeline::standard();
  pipeline.run(state);
  EXPECT_FALSE(pipeline.snapshot(state).contains("aux"));
}

}  // namespace
}  // namespace lbist
