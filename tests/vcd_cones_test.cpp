// VCD waveform emission and gate-netlist cone analysis.

#include <gtest/gtest.h>

#include "binding/bist_aware_binder.hpp"
#include "dfg/benchmarks.hpp"
#include "gates/cones.hpp"
#include "gates/module_builders.hpp"
#include "graph/conflict.hpp"
#include "interconnect/build_datapath.hpp"
#include "rtl/controller.hpp"
#include "rtl/simulate.hpp"
#include "rtl/vcd.hpp"

namespace lbist {
namespace {

struct SimFixture {
  Benchmark bench = make_ex1();
  IdMap<VarId, LiveInterval> lt =
      compute_lifetimes(bench.design.dfg, *bench.design.schedule);
  VarConflictGraph cg = build_conflict_graph(bench.design.dfg, lt);
  ModuleBinding mb =
      ModuleBinding::bind(bench.design.dfg, *bench.design.schedule,
                          parse_module_spec(bench.module_spec));
  RegisterBinding rb = bind_registers_bist_aware(bench.design.dfg, cg, mb);
  Datapath dp = build_datapath(bench.design.dfg, mb, rb);
  Controller ctl = Controller::generate(bench.design.dfg,
                                        *bench.design.schedule, rb, dp, lt);

  SimResult simulate() {
    IdMap<VarId, std::uint32_t> inputs(bench.design.dfg.num_vars(), 0);
    inputs[*bench.design.dfg.find_var("a")] = 3;
    inputs[*bench.design.dfg.find_var("b")] = 4;
    inputs[*bench.design.dfg.find_var("c")] = 5;
    inputs[*bench.design.dfg.find_var("e")] = 2;
    return simulate_datapath(bench.design.dfg, dp, ctl, inputs, 8);
  }
};

TEST(Vcd, TraceCoversEveryControlWord) {
  SimFixture f;
  auto sim = f.simulate();
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim.reg_trace.size(),
            static_cast<std::size_t>(f.ctl.num_steps()) + 1);
}

TEST(Vcd, WellFormedHeaderAndChanges) {
  SimFixture f;
  auto sim = f.simulate();
  const std::string vcd = emit_vcd(f.dp, sim, 8);
  EXPECT_NE(vcd.find("$timescale"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  for (const auto& reg : f.dp.registers) {
    EXPECT_NE(vcd.find(" " + reg.name + " [7:0] $end"), std::string::npos);
  }
  // Timestamps 0..num_steps appear.
  for (int s = 0; s <= f.ctl.num_steps(); ++s) {
    EXPECT_NE(vcd.find("#" + std::to_string(s) + "\n"), std::string::npos);
  }
  // The final product 168 = 0b10101000 lands in some register.
  EXPECT_NE(vcd.find("b10101000 "), std::string::npos);
}

TEST(Vcd, OnlyChangesAreDumped) {
  SimFixture f;
  auto sim = f.simulate();
  const std::string vcd = emit_vcd(f.dp, sim, 8);
  // A register that never changes value after a write appears fewer times
  // than there are timestamps: count value lines and compare to the
  // worst case of steps * registers.
  const auto lines = static_cast<std::size_t>(
      std::count(vcd.begin(), vcd.end(), '\n'));
  const std::size_t worst = (static_cast<std::size_t>(f.ctl.num_steps()) +
                             1) * f.dp.registers.size();
  EXPECT_LT(lines, worst + 20);  // header + timestamps + sparse changes
}

TEST(Cones, BitwiseConesAreWidthTwo)  {
  auto profile = cone_profile(build_bitwise(OpKind::And, 8).netlist);
  EXPECT_EQ(profile.max_cone, 2u);
  EXPECT_EQ(profile.min_cone, 2u);
  EXPECT_EQ(profile.pseudo_exhaustive_patterns, 4u);
}

TEST(Cones, RippleAdderConesGrowLinearly) {
  auto sizes = cone_sizes(build_adder(8).netlist);
  ASSERT_EQ(sizes.size(), 8u);
  // Output i depends on operand bits 0..i of both inputs.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(sizes[i], 2 * (i + 1)) << "bit " << i;
  }
  auto profile = cone_profile(build_adder(8).netlist);
  EXPECT_EQ(profile.max_cone, 16u);
  EXPECT_EQ(profile.pseudo_exhaustive_patterns, 1u << 16);
}

TEST(Cones, MultiplierMsbSpansEverything) {
  auto profile = cone_profile(build_multiplier(8).netlist);
  // The top output bit depends on nearly all 16 operand bits.
  EXPECT_GE(profile.max_cone, 14u);
  EXPECT_EQ(profile.min_cone, 2u);  // LSB = a0 & b0
}

TEST(Cones, PseudoExhaustiveCapAt63) {
  // A wide multiplier would need an impossible pattern count; the profile
  // caps rather than overflows.
  auto profile = cone_profile(build_multiplier(32).netlist);
  EXPECT_GE(profile.max_cone, 60u);
  EXPECT_EQ(profile.pseudo_exhaustive_patterns, ~std::uint64_t{0} >> 1);
}

}  // namespace
}  // namespace lbist
