// Torture tests for the persistent content-addressed cache
// (service/diskcache): round-trip persistence across reopen, last-writer-
// wins semantics, crash-recovery of truncated and corrupt tails (longest-
// valid-prefix WAL semantics), budget-driven compaction and eviction, the
// advisory single-writer lock, concurrent shard readers against a live
// writer (the CI sanitizer job runs this file under TSan), and the tiered
// SynthesisCache promoting disk values back into the in-memory LRU.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.hpp"
#include "service/diskcache/diskcache.hpp"
#include "support/check.hpp"
#include "support/json.hpp"

namespace lbist {
namespace {

/// Private scratch directory, removed (with its cache files) on scope
/// exit so repeated ctest runs never see stale state.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/lowbist-diskcache-XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path = made;
  }
  ~TempDir() {
    for (const char* name : {"cache.dat", "cache.lock", "cache.dat.compact"}) {
      std::remove((path + "/" + name).c_str());
    }
    ::rmdir(path.c_str());
  }
  std::string path;
};

DiskCacheOptions test_opts(const TempDir& dir,
                           std::uint64_t budget = 256ull << 20) {
  DiskCacheOptions opts;
  opts.dir = dir.path;
  opts.budget_bytes = budget;
  opts.background_compaction = false;  // determinism: compact_now() only
  return opts;
}

/// Overwrites `count` bytes at `offset` from the end of the record file.
void corrupt_tail(const std::string& data_path, off_t from_end, char byte) {
  const int fd = ::open(data_path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  struct stat st{};
  ASSERT_EQ(::fstat(fd, &st), 0);
  ASSERT_EQ(::pwrite(fd, &byte, 1, st.st_size - from_end), 1);
  ::close(fd);
}

TEST(DiskCache, RoundTripsAndSurvivesReopen) {
  TempDir dir;
  {
    DiskCache cache(test_opts(dir));
    cache.put("alpha", "{\"v\":1}");
    cache.put("beta", "{\"v\":2}");
    ASSERT_TRUE(cache.get("alpha").has_value());
    EXPECT_EQ(*cache.get("alpha"), "{\"v\":1}");
    EXPECT_FALSE(cache.get("missing").has_value());
    const DiskCache::Stats s = cache.stats();
    EXPECT_EQ(s.puts, 2u);
    EXPECT_EQ(s.entries, 2u);
    EXPECT_EQ(s.misses, 1u);
  }
  // A fresh process (new instance, same directory) sees everything.
  DiskCache reopened(test_opts(dir));
  EXPECT_EQ(reopened.stats().recovered, 2u);
  ASSERT_TRUE(reopened.get("beta").has_value());
  EXPECT_EQ(*reopened.get("beta"), "{\"v\":2}");
  EXPECT_EQ(*reopened.get("alpha"), "{\"v\":1}");
}

TEST(DiskCache, LatestPutWinsAcrossReopen) {
  TempDir dir;
  {
    DiskCache cache(test_opts(dir));
    cache.put("key", "old");
    cache.put("key", "mid");
    cache.put("key", "new");
    EXPECT_EQ(*cache.get("key"), "new");
    EXPECT_EQ(cache.stats().entries, 1u);
  }
  DiskCache reopened(test_opts(dir));
  EXPECT_EQ(*reopened.get("key"), "new");
  EXPECT_EQ(reopened.stats().entries, 1u);
}

TEST(DiskCache, TruncatedTailRecordIsDroppedOnRecovery) {
  TempDir dir;
  std::string data_path;
  {
    DiskCache cache(test_opts(dir));
    cache.put("intact", std::string(200, 'a'));
    cache.put("torn", std::string(200, 'b'));
    data_path = cache.path();
  }
  // Simulate a crash mid-append: the last record loses its final 3 bytes.
  {
    const int fd = ::open(data_path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    struct stat st{};
    ASSERT_EQ(::fstat(fd, &st), 0);
    ASSERT_EQ(::ftruncate(fd, st.st_size - 3), 0);
    ::close(fd);
  }
  DiskCache recovered(test_opts(dir));
  EXPECT_TRUE(recovered.get("intact").has_value());
  EXPECT_FALSE(recovered.get("torn").has_value());
  const DiskCache::Stats s = recovered.stats();
  EXPECT_EQ(s.recovered, 1u);
  EXPECT_GE(s.dropped, 1u);
  // The invalid suffix was truncated away, so appends keep working.
  recovered.put("torn", "again");
  EXPECT_EQ(*recovered.get("torn"), "again");
}

TEST(DiskCache, CorruptCrcDropsTailOnRecovery) {
  TempDir dir;
  std::string data_path;
  {
    DiskCache cache(test_opts(dir));
    cache.put("keep", std::string(100, 'k'));
    cache.put("rot", std::string(100, 'r'));
    data_path = cache.path();
  }
  // Flip one byte inside the last record's value: length fields still
  // parse, but the checksum must catch the rot.
  corrupt_tail(data_path, /*from_end=*/5, 'X');
  DiskCache recovered(test_opts(dir));
  EXPECT_TRUE(recovered.get("keep").has_value());
  EXPECT_FALSE(recovered.get("rot").has_value());
  EXPECT_GE(recovered.stats().dropped, 1u);
}

TEST(DiskCache, GarbageFileIsRefusedNotGuessed) {
  TempDir dir;
  {
    std::FILE* f = std::fopen((dir.path + "/cache.dat").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a cache file, long enough to have a header",
               f);
    std::fclose(f);
  }
  EXPECT_THROW(DiskCache cache(test_opts(dir)), Error);
}

TEST(DiskCache, CompactionDropsSupersededRecords) {
  TempDir dir;
  DiskCache cache(test_opts(dir));
  for (int round = 0; round < 10; ++round) {
    for (int k = 0; k < 5; ++k) {
      cache.put("key" + std::to_string(k),
                "round" + std::to_string(round));
    }
  }
  const std::uint64_t before = cache.stats().file_bytes;
  cache.compact_now();
  const DiskCache::Stats s = cache.stats();
  EXPECT_LT(s.file_bytes, before);  // 45 dead records rewritten away
  EXPECT_EQ(s.entries, 5u);
  EXPECT_EQ(s.compactions, 1u);
  EXPECT_EQ(s.evictions, 0u);  // well under budget: nothing evicted
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(*cache.get("key" + std::to_string(k)), "round9");
  }
}

TEST(DiskCache, BudgetEvictionDropsOldestKeepsNewest) {
  TempDir dir;
  // ~50 live entries of ~230 bytes each vs a 4 KiB budget: compaction
  // must evict the oldest-inserted entries until the live set fits.
  DiskCache cache(test_opts(dir, /*budget=*/4096));
  for (int k = 0; k < 50; ++k) {
    cache.put("key" + std::to_string(k), std::string(200, 'v'));
  }
  cache.compact_now();
  const DiskCache::Stats s = cache.stats();
  EXPECT_LE(s.file_bytes, 4096u);
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LT(s.entries, 50u);
  EXPECT_GT(s.entries, 0u);
  // Newest entries survive; the oldest were evicted.
  EXPECT_TRUE(cache.get("key49").has_value());
  EXPECT_FALSE(cache.get("key0").has_value());
  // Values survive the rewrite byte-for-byte and the next reopen.
  EXPECT_EQ(*cache.get("key49"), std::string(200, 'v'));
}

TEST(DiskCache, SecondWriterOnSameDirectoryIsRefused) {
  TempDir dir;
  DiskCache first(test_opts(dir));
  try {
    DiskCache second(test_opts(dir));
    FAIL() << "expected the advisory lock to refuse a second writer";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("flock"), std::string::npos);
  }
}

// Concurrent shard readers against a live writer plus a compaction: the
// CI sanitizer job runs this under ThreadSanitizer, so any missing
// synchronization in get/put/compact shows up as a race report.
TEST(DiskCache, ConcurrentShardReadersSeeConsistentValues) {
  TempDir dir;
  DiskCache cache(test_opts(dir));
  constexpr int kKeys = 200;
  for (int k = 0; k < kKeys; ++k) {
    cache.put("seed" + std::to_string(k), "value" + std::to_string(k));
  }
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  readers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      int i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const int k = i++ % kKeys;
        const auto got = cache.get("seed" + std::to_string(k));
        if (!got.has_value() || *got != "value" + std::to_string(k)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Writer: append fresh keys (forcing remap-on-read paths) and compact.
  for (int k = 0; k < 300; ++k) {
    cache.put("extra" + std::to_string(k), std::string(64, 'e'));
    if (k % 100 == 99) cache.compact_now();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(*cache.get("seed7"), "value7");
}

TEST(TieredSynthesisCache, PromotesDiskHitsIntoMemory) {
  TempDir dir;
  DiskCache disk(test_opts(dir));
  {
    SynthesisCache warm(4, &disk);
    warm.put("job", Json::parse("{\"area\": 42}"));
  }
  // A fresh L1 (new server process) misses in memory, hits on disk, and
  // promotes the value so the second lookup never touches the disk again.
  SynthesisCache cold(4, &disk);
  const std::uint64_t disk_hits_before = disk.stats().hits;
  auto first = cold.get("job");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->at("area").as_number(), 42.0);
  EXPECT_EQ(cold.persistent_hits(), 1u);
  EXPECT_EQ(disk.stats().hits, disk_hits_before + 1);

  auto second = cold.get("job");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(cold.persistent_hits(), 1u);  // L1 answered; disk untouched
  EXPECT_EQ(disk.stats().hits, disk_hits_before + 1);
}

TEST(TieredSynthesisCache, MalformedDiskValueIsAMissNotAnError) {
  TempDir dir;
  DiskCache disk(test_opts(dir));
  disk.put("poison", "not json at all {");
  SynthesisCache cache(4, &disk);
  EXPECT_FALSE(cache.get("poison").has_value());
  EXPECT_EQ(cache.persistent_hits(), 0u);
}

TEST(TieredSynthesisCache, DetachedDiskBehavesLikePlainLru) {
  SynthesisCache cache(2);
  cache.put("a", Json::parse("{\"x\":1}"));
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_EQ(cache.persistent_hits(), 0u);
  const SynthesisCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
}

}  // namespace
}  // namespace lbist
