// Error-path coverage: every layer's input validation fires with a clear
// message instead of corrupting state.

#include <gtest/gtest.h>

#include "binding/bist_aware_binder.hpp"
#include "binding/module_binding.hpp"
#include "bist/aliasing.hpp"
#include "bist/verilog_bist.hpp"
#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random_dfg.hpp"
#include "graph/conflict.hpp"
#include "interconnect/build_datapath.hpp"
#include "rtl/controller.hpp"
#include "sched/asap_alap.hpp"
#include "support/check.hpp"

namespace lbist {
namespace {

TEST(Robustness, DfgOperandValidation) {
  Dfg dfg("bad");
  VarId a = dfg.add_input("a");
  EXPECT_THROW(dfg.add_op(OpKind::Add, a, VarId{99}, "r"), Error);
  EXPECT_THROW(dfg.add_op(OpKind::Add, VarId{}, a, "r"), Error);
}

TEST(Robustness, DuplicateOpNamesRejected) {
  Dfg dfg("dup");
  VarId a = dfg.add_input("a");
  dfg.add_op(OpKind::Add, a, a, "r1", "op1");
  EXPECT_THROW(dfg.add_op(OpKind::Add, a, a, "r2", "op1"), Error);
}

TEST(Robustness, ScheduleMustCoverEveryOp) {
  auto bench = make_ex1();
  IdMap<OpId, int> too_small(2, 1);
  EXPECT_THROW(Schedule(bench.design.dfg, std::move(too_small)), Error);
}

TEST(Robustness, ScheduleStepsArePositive) {
  Dfg dfg("steps");
  VarId a = dfg.add_input("a");
  VarId r = dfg.add_op(OpKind::Add, a, a, "r");
  dfg.mark_output(r);
  IdMap<OpId, int> steps(1, 0);
  EXPECT_THROW(Schedule(dfg, std::move(steps)), Error);
}

TEST(Robustness, BinderRejectsNonChordalGraph) {
  // Hand-built 4-cycle conflict graph (cannot arise from straight-line
  // schedules, but callers can feed arbitrary graphs).
  Dfg dfg("cyc");
  std::vector<VarId> vars;
  VarId in = dfg.add_input("seed");
  VarId prev = in;
  for (int i = 0; i < 4; ++i) {
    prev = dfg.add_op(OpKind::Add, prev, in, "v" + std::to_string(i));
    vars.push_back(prev);
  }
  dfg.mark_output(prev);
  VarConflictGraph cg;
  cg.vertex_of.assign(dfg.num_vars(), -1);
  for (VarId v : vars) {
    cg.vertex_of[v] = static_cast<int>(cg.vars.size());
    cg.vars.push_back(v);
  }
  cg.graph = UndirectedGraph(4);
  cg.graph.add_edge(0, 1);
  cg.graph.add_edge(1, 2);
  cg.graph.add_edge(2, 3);
  cg.graph.add_edge(3, 0);
  auto mb = ModuleBinding::bind(dfg, asap_schedule(dfg),
                                minimal_module_spec(dfg, asap_schedule(dfg)));
  EXPECT_THROW((void)bind_registers_bist_aware(dfg, cg, mb), Error);
}

TEST(Robustness, BuildDatapathRequiresCompleteBinding) {
  auto bench = make_ex1();
  auto lt = compute_lifetimes(bench.design.dfg, *bench.design.schedule);
  auto cg = build_conflict_graph(bench.design.dfg, lt);
  auto mb = ModuleBinding::bind(bench.design.dfg, *bench.design.schedule,
                                parse_module_spec(bench.module_spec));
  RegisterBinding empty;
  empty.reg_of.assign(bench.design.dfg.num_vars(), RegId::invalid());
  EXPECT_THROW((void)build_datapath(bench.design.dfg, mb, empty), Error);
}

TEST(Robustness, AreaModelUnknownWidthsInLfsr) {
  EXPECT_THROW(misr_aliasing_empirical(8, 0, 10, 1), Error);
  EXPECT_THROW((void)misr_width_for_escape_probability(0.0), Error);
  EXPECT_THROW((void)misr_width_for_escape_probability(1.5), Error);
}

TEST(Robustness, SynthesizerSurfacesSpecErrors) {
  auto bench = make_ex2();
  SynthesisOptions opts;
  EXPECT_THROW((void)Synthesizer(opts).run(bench.design.dfg,
                                           *bench.design.schedule,
                                           parse_module_spec("1+")),
               Error);
}

TEST(Robustness, AlapRejectsImpossibleDeadline) {
  auto bench = make_ex1();
  EXPECT_THROW((void)alap_steps(bench.design.dfg, 1), Error);
}

TEST(Robustness, RandomDfgOptionValidation) {
  RandomDfgOptions opts;
  opts.num_inputs = 1;
  EXPECT_THROW((void)make_random_dfg(opts), Error);
  opts = RandomDfgOptions{};
  opts.kinds.clear();
  EXPECT_THROW((void)make_random_dfg(opts), Error);
}

}  // namespace
}  // namespace lbist
