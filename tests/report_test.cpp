// JSON emitter and report serialization tests.

#include <gtest/gtest.h>

#include "core/explorer.hpp"
#include "core/report.hpp"
#include "dfg/benchmarks.hpp"
#include "support/check.hpp"
#include "support/json.hpp"

namespace lbist {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json::null().dump(), "null");
  EXPECT_EQ(Json::boolean(true).dump(), "true");
  EXPECT_EQ(Json::number(42).dump(), "42");
  EXPECT_EQ(Json::number(2.5).dump(), "2.5");
  EXPECT_EQ(Json::string("hi").dump(), "\"hi\"");
}

TEST(Json, EscapesStrings) {
  EXPECT_EQ(Json::string("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json::string(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectsKeepInsertionOrderAndOverwrite) {
  Json o = Json::object();
  o.set("b", Json::number(1)).set("a", Json::number(2));
  o.set("b", Json::number(3));  // overwrite, keeps position
  const std::string s = o.dump();
  EXPECT_LT(s.find("\"b\": 3"), s.find("\"a\": 2"));
}

TEST(Json, NestedStructuresIndent) {
  Json arr = Json::array();
  arr.push_back(Json::object().set("x", Json::number(1)));
  const std::string s = arr.dump();
  EXPECT_NE(s.find("[\n"), std::string::npos);
  EXPECT_NE(s.find("  {"), std::string::npos);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().dump(), "[]");
  EXPECT_EQ(Json::object().dump(), "{}");
}

TEST(Json, TypeErrorsThrow) {
  Json num = Json::number(1);
  EXPECT_THROW(num.push_back(Json::null()), Error);
  EXPECT_THROW(num.set("k", Json::null()), Error);
}

TEST(Report, SynthesisReportHasAllSections) {
  auto bench = make_ex1();
  auto row = compare_benchmark(bench);
  const std::string s =
      report_json(bench.design.dfg, row.testable).dump();
  for (const char* key :
       {"\"design\"", "\"metrics\"", "\"registers\"", "\"modules\"",
        "\"bist_overhead_percent\"", "\"embedding\"", "\"tpg_left\"",
        "\"bist_role\""}) {
    EXPECT_NE(s.find(key), std::string::npos) << key;
  }
  EXPECT_NE(s.find("\"design\": \"ex1\""), std::string::npos);
}

TEST(Report, ComparisonCarriesBothArms) {
  auto row = compare_benchmark(make_ex2());
  const std::string s = comparison_json(row).dump();
  EXPECT_NE(s.find("\"traditional\""), std::string::npos);
  EXPECT_NE(s.find("\"testable\""), std::string::npos);
  EXPECT_NE(s.find("\"reduction_percent\""), std::string::npos);
}

TEST(Report, SweepMarksParetoMembers) {
  Dfg fir = make_fir(8);
  auto points = explore_resource_budgets(
      fir, {{{OpKind::Mul, 1}, {OpKind::Add, 1}},
            {{OpKind::Mul, 4}, {OpKind::Add, 2}}});
  const std::string s = sweep_json(points).dump();
  EXPECT_NE(s.find("\"pareto\": true"), std::string::npos);
  EXPECT_NE(s.find("\"label\""), std::string::npos);
}

}  // namespace
}  // namespace lbist
