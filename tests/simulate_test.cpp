// Controller generation and cycle-level data-path simulation tests.
//
// The headline property: for every benchmark, every binder style and many
// input vectors, executing the generated control words on the structural
// netlist reproduces the DFG's reference semantics exactly.  This is the
// end-to-end proof that binding + interconnect + controller are mutually
// consistent (a wrong merge or mux select cannot hide).

#include <gtest/gtest.h>

#include <random>

#include "baselines/ralloc.hpp"
#include "baselines/syntest.hpp"
#include "binding/bist_aware_binder.hpp"
#include "binding/clique_binder.hpp"
#include "binding/traditional_binder.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random_dfg.hpp"
#include "graph/conflict.hpp"
#include "interconnect/build_datapath.hpp"
#include "rtl/controller.hpp"
#include "rtl/simulate.hpp"
#include "sched/list_sched.hpp"

namespace lbist {
namespace {

constexpr int kWidth = 8;

IdMap<VarId, std::uint32_t> random_inputs(const Dfg& dfg,
                                          std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> dist(0, 255);
  IdMap<VarId, std::uint32_t> inputs(dfg.num_vars(), 0);
  for (const auto& v : dfg.vars()) {
    if (v.is_input()) inputs[v.id] = dist(rng);
  }
  return inputs;
}

void check_simulation(const Dfg& dfg, const Schedule& sched,
                      const std::vector<ModuleProto>& protos,
                      const RegisterBinding& rb, std::uint64_t seeds = 5) {
  auto lt = compute_lifetimes(dfg, sched);
  auto mb = ModuleBinding::bind(dfg, sched, protos);
  auto dp = build_datapath(dfg, mb, rb);
  auto ctl = Controller::generate(dfg, sched, rb, dp, lt);
  for (std::uint64_t s = 1; s <= seeds; ++s) {
    auto result =
        simulate_datapath(dfg, dp, ctl, random_inputs(dfg, s), kWidth);
    ASSERT_TRUE(result.ok())
        << dfg.name() << ": first mismatch on variable "
        << dfg.var(result.mismatches.front()).name;
  }
}

TEST(EvalOp, MatchesExpectedSemantics) {
  EXPECT_EQ(eval_op(OpKind::Add, 200, 100, 8), (200u + 100u) & 0xFF);
  EXPECT_EQ(eval_op(OpKind::Sub, 3, 5, 8), (3u - 5u) & 0xFF);
  EXPECT_EQ(eval_op(OpKind::Mul, 20, 20, 8), 400u & 0xFF);
  EXPECT_EQ(eval_op(OpKind::Div, 20, 3, 8), 6u);
  EXPECT_EQ(eval_op(OpKind::Div, 20, 0, 8), 0u);  // hardware convention
  EXPECT_EQ(eval_op(OpKind::Lt, 3, 5, 8), 1u);
  EXPECT_EQ(eval_op(OpKind::Gt, 3, 5, 8), 0u);
  EXPECT_EQ(eval_op(OpKind::Xor, 0xF0, 0x0F, 8), 0xFFu);
}

TEST(EvaluateDfg, Ex1Reference) {
  auto bench = make_ex1();
  const Dfg& dfg = bench.design.dfg;
  IdMap<VarId, std::uint32_t> inputs(dfg.num_vars(), 0);
  inputs[*dfg.find_var("a")] = 3;
  inputs[*dfg.find_var("b")] = 4;
  inputs[*dfg.find_var("c")] = 5;
  inputs[*dfg.find_var("e")] = 2;
  auto values = evaluate_dfg(dfg, inputs, kWidth);
  // d=7, f=12, g=24, h=7*24=168.
  EXPECT_EQ(values[*dfg.find_var("d")], 7u);
  EXPECT_EQ(values[*dfg.find_var("f")], 12u);
  EXPECT_EQ(values[*dfg.find_var("g")], 24u);
  EXPECT_EQ(values[*dfg.find_var("h")], 168u);
}

TEST(Controller, WordZeroLoadsEarlyInputs) {
  auto bench = make_ex1();
  const Dfg& dfg = bench.design.dfg;
  auto lt = compute_lifetimes(dfg, *bench.design.schedule);
  auto cg = build_conflict_graph(dfg, lt);
  auto mb = ModuleBinding::bind(dfg, *bench.design.schedule,
                                parse_module_spec(bench.module_spec));
  auto rb = bind_registers_bist_aware(dfg, cg, mb);
  auto dp = build_datapath(dfg, mb, rb);
  auto ctl = Controller::generate(dfg, *bench.design.schedule, rb, dp, lt);
  EXPECT_EQ(ctl.num_steps(), 4);
  // a and b (birth 0) load in word 0.
  int loads = 0;
  for (const auto& rc : ctl.word(0).regs) loads += rc.enable ? 1 : 0;
  EXPECT_EQ(loads, 2);
  // Each of steps 1..4 runs exactly one operation.
  for (int s = 1; s <= 4; ++s) {
    int active = 0;
    for (const auto& mc : ctl.word(s).modules) active += mc.active ? 1 : 0;
    EXPECT_EQ(active, 1) << "step " << s;
  }
}

TEST(Controller, DedicatedRegistersPreloadInWordZero) {
  auto bench = make_paulin();
  const Dfg& dfg = bench.design.dfg;
  auto lt = compute_lifetimes(dfg, *bench.design.schedule);
  auto cg = build_conflict_graph(dfg, lt);
  auto mb = ModuleBinding::bind(dfg, *bench.design.schedule,
                                parse_module_spec(bench.module_spec));
  auto rb = bind_registers_bist_aware(dfg, cg, mb);
  auto dp = build_datapath(dfg, mb, rb);
  auto ctl = Controller::generate(dfg, *bench.design.schedule, rb, dp, lt);
  for (std::size_t r = 0; r < dp.registers.size(); ++r) {
    if (dp.registers[r].dedicated_input) {
      EXPECT_TRUE(ctl.word(0).regs[r].enable) << dp.registers[r].name;
    }
  }
}

class SimAllBenchmarks : public ::testing::TestWithParam<int> {};

TEST_P(SimAllBenchmarks, EveryBinderExecutesCorrectly) {
  auto benches = paper_benchmarks();
  const auto& bench = benches[static_cast<std::size_t>(GetParam())];
  const Dfg& dfg = bench.design.dfg;
  const Schedule& sched = *bench.design.schedule;
  const auto protos = parse_module_spec(bench.module_spec);
  auto lt = compute_lifetimes(dfg, sched);
  auto cg = build_conflict_graph(dfg, lt);
  auto mb = ModuleBinding::bind(dfg, sched, protos);

  check_simulation(dfg, sched, protos, bind_registers_traditional(dfg, cg, lt));
  check_simulation(dfg, sched, protos, bind_registers_reverse_peo(dfg, cg));
  check_simulation(dfg, sched, protos, bind_registers_bist_aware(dfg, cg, mb));
  check_simulation(dfg, sched, protos, bind_registers_ralloc(dfg, cg, mb));
  check_simulation(dfg, sched, protos, bind_registers_syntest(dfg, cg, mb));
  check_simulation(dfg, sched, protos, bind_registers_clique(dfg, cg, mb));
}

INSTANTIATE_TEST_SUITE_P(AllFive, SimAllBenchmarks, ::testing::Range(0, 5));

TEST(Simulation, RandomDesignsExecuteCorrectly) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    RandomDfgOptions opts;
    opts.seed = seed;
    auto rd = make_random_dfg(opts);
    auto protos = minimal_module_spec(rd.dfg, rd.schedule);
    auto lt = compute_lifetimes(rd.dfg, rd.schedule);
    auto cg = build_conflict_graph(rd.dfg, lt);
    auto mb = ModuleBinding::bind(rd.dfg, rd.schedule, protos);
    check_simulation(rd.dfg, rd.schedule, protos,
                     bind_registers_bist_aware(rd.dfg, cg, mb), 3);
    check_simulation(rd.dfg, rd.schedule, protos,
                     bind_registers_traditional(rd.dfg, cg, lt), 3);
  }
}

TEST(Simulation, FirFilterComputesConvolution) {
  Dfg fir = make_fir(4);
  Schedule sched = list_schedule(fir, {{OpKind::Mul, 2}, {OpKind::Add, 1}});
  auto protos = minimal_module_spec(fir, sched);
  auto lt = compute_lifetimes(fir, sched);
  auto cg = build_conflict_graph(fir, lt);
  auto mb = ModuleBinding::bind(fir, sched, protos);
  auto rb = bind_registers_bist_aware(fir, cg, mb);
  auto dp = build_datapath(fir, mb, rb);
  auto ctl = Controller::generate(fir, sched, rb, dp, lt);

  IdMap<VarId, std::uint32_t> inputs(fir.num_vars(), 0);
  std::uint32_t expected = 0;
  for (int i = 0; i < 4; ++i) {
    const std::uint32_t x = static_cast<std::uint32_t>(i + 1);
    const std::uint32_t c = static_cast<std::uint32_t>(2 * i + 1);
    inputs[*fir.find_var("x" + std::to_string(i))] = x;
    inputs[*fir.find_var("c" + std::to_string(i))] = c;
    expected = (expected + x * c) & 0xFF;
  }
  auto result = simulate_datapath(fir, dp, ctl, inputs, kWidth);
  ASSERT_TRUE(result.ok());
  // The final adder output is the single primary output.
  for (const auto& v : fir.vars()) {
    if (v.is_output) {
      EXPECT_EQ(result.observed[v.id], expected);
    }
  }
}

TEST(Simulation, BiquadAndLatticeBenchesExecute) {
  for (Dfg dfg : {make_biquad_cascade(2), make_lattice(3)}) {
    Schedule sched =
        list_schedule(dfg, {{OpKind::Mul, 2}, {OpKind::Add, 1}});
    auto protos = minimal_module_spec(dfg, sched);
    auto lt = compute_lifetimes(dfg, sched);
    auto cg = build_conflict_graph(dfg, lt);
    auto mb = ModuleBinding::bind(dfg, sched, protos);
    check_simulation(dfg, sched, protos,
                     bind_registers_bist_aware(dfg, cg, mb), 3);
  }
}

}  // namespace
}  // namespace lbist
