# Checkpoint/resume smoke: for every stage boundary, `synth --dump-ir` then
# `synth --resume-from` must reproduce the uninterrupted run byte for byte —
# both the text report and the --json report.  Also exercises the explore
# checkpoint file (a rerun must add no lines and print identical output)
# and the version subcommand.

execute_process(COMMAND ${LOWBIST} bench ex1
                OUTPUT_FILE ${WORKDIR}/ckpt_ex1.dfg RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench dump failed")
endif()

execute_process(
  COMMAND ${LOWBIST} synth ${WORKDIR}/ckpt_ex1.dfg --modules "1+,1*"
  OUTPUT_VARIABLE want_text RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "full synth failed")
endif()
execute_process(
  COMMAND ${LOWBIST} synth ${WORKDIR}/ckpt_ex1.dfg --modules "1+,1*" --json
  OUTPUT_VARIABLE want_json RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "full synth --json failed")
endif()

foreach(stage sched conflict_graph binding interconnect bist)
  execute_process(
    COMMAND ${LOWBIST} synth ${WORKDIR}/ckpt_ex1.dfg --modules "1+,1*"
            --dump-ir ${stage} --ir-out ${WORKDIR}/ckpt_${stage}.json
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "--dump-ir ${stage} failed")
  endif()
  execute_process(
    COMMAND ${LOWBIST} synth --resume-from ${WORKDIR}/ckpt_${stage}.json
    OUTPUT_VARIABLE got_text RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "--resume-from ${stage} failed")
  endif()
  if(NOT got_text STREQUAL want_text)
    message(FATAL_ERROR "resume from ${stage}: text report differs")
  endif()
  execute_process(
    COMMAND ${LOWBIST} synth --resume-from ${WORKDIR}/ckpt_${stage}.json --json
    OUTPUT_VARIABLE got_json RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "--resume-from ${stage} --json failed")
  endif()
  if(NOT got_json STREQUAL want_json)
    message(FATAL_ERROR "resume from ${stage}: JSON report differs")
  endif()
endforeach()

# Resuming a completed snapshot past its stage must fail cleanly.
execute_process(
  COMMAND ${LOWBIST} synth --resume-from ${WORKDIR}/ckpt_bist.json
          --dump-ir sched
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "dump-ir of an already-passed stage should fail")
endif()

# Explore checkpoint: a rerun against the same file must add no lines and
# print byte-identical output.
file(REMOVE ${WORKDIR}/ckpt_explore.jsonl)
execute_process(
  COMMAND ${LOWBIST} explore ${WORKDIR}/ckpt_ex1.dfg
          --modules "1+,1*;2+,1*" --binder trad,bist
          --checkpoint ${WORKDIR}/ckpt_explore.jsonl
  OUTPUT_VARIABLE first RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "explore with checkpoint failed")
endif()
file(READ ${WORKDIR}/ckpt_explore.jsonl lines_before)
execute_process(
  COMMAND ${LOWBIST} explore ${WORKDIR}/ckpt_ex1.dfg
          --modules "1+,1*;2+,1*" --binder trad,bist
          --checkpoint ${WORKDIR}/ckpt_explore.jsonl
  OUTPUT_VARIABLE second RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "explore resume from checkpoint failed")
endif()
if(NOT second STREQUAL first)
  message(FATAL_ERROR "explore checkpoint rerun output differs")
endif()
file(READ ${WORKDIR}/ckpt_explore.jsonl lines_after)
if(NOT lines_after STREQUAL lines_before)
  message(FATAL_ERROR "explore checkpoint rerun appended lines")
endif()
string(FIND "${lines_before}" "lowbist-explore-v1" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "checkpoint header missing")
endif()

# Version surface.
execute_process(COMMAND ${LOWBIST} version
                OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "version failed")
endif()
string(FIND "${out}" "lowbist " pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "version output missing banner")
endif()
execute_process(COMMAND ${LOWBIST} version --json
                OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "version --json failed")
endif()
string(FIND "${out}" "\"compiler\"" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "version --json missing compiler key")
endif()
