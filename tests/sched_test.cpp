// Unit tests for the scheduling library: ASAP/ALAP, list scheduling under
// resource limits, and force-directed scheduling.

#include <gtest/gtest.h>

#include "dfg/benchmarks.hpp"
#include "dfg/lifetime.hpp"
#include "dfg/dfg.hpp"
#include "sched/asap_alap.hpp"
#include "sched/force_directed.hpp"
#include "sched/list_sched.hpp"
#include "sched/pressure.hpp"
#include "support/check.hpp"

namespace lbist {
namespace {

/// Diamond: r = (a+b) * (a-b); s = r + a.
Dfg diamond() {
  Dfg dfg("diamond");
  VarId a = dfg.add_input("a");
  VarId b = dfg.add_input("b");
  VarId p = dfg.add_op(OpKind::Add, a, b, "p");
  VarId q = dfg.add_op(OpKind::Sub, a, b, "q");
  VarId r = dfg.add_op(OpKind::Mul, p, q, "r");
  VarId s = dfg.add_op(OpKind::Add, r, a, "s");
  dfg.mark_output(s);
  dfg.validate();
  return dfg;
}

TEST(Asap, DiamondSteps) {
  Dfg dfg = diamond();
  auto steps = asap_steps(dfg);
  EXPECT_EQ(steps[OpId{0}], 1);
  EXPECT_EQ(steps[OpId{1}], 1);
  EXPECT_EQ(steps[OpId{2}], 2);
  EXPECT_EQ(steps[OpId{3}], 3);
  EXPECT_EQ(critical_path_length(dfg), 3);
}

TEST(Asap, ScheduleIsValid) {
  Dfg dfg = diamond();
  Schedule s = asap_schedule(dfg);  // Schedule ctor validates dependencies
  EXPECT_EQ(s.num_steps(), 3);
}

TEST(Alap, RespectsDeadline) {
  Dfg dfg = diamond();
  auto steps = alap_steps(dfg, 5);
  EXPECT_EQ(steps[OpId{3}], 5);
  EXPECT_EQ(steps[OpId{2}], 4);
  EXPECT_EQ(steps[OpId{0}], 3);
  EXPECT_EQ(steps[OpId{1}], 3);
}

TEST(Alap, RejectsTooShortDeadline) {
  Dfg dfg = diamond();
  EXPECT_THROW(alap_steps(dfg, 2), Error);
}

TEST(Alap, EqualsAsapOnCriticalPath) {
  Dfg dfg = diamond();
  auto asap = asap_steps(dfg);
  auto alap = alap_steps(dfg, critical_path_length(dfg));
  // Every op on the critical path has zero mobility.
  EXPECT_EQ(asap[OpId{2}], alap[OpId{2}]);
  EXPECT_EQ(asap[OpId{3}], alap[OpId{3}]);
}

TEST(ListSched, UnlimitedMatchesAsap) {
  Dfg dfg = diamond();
  Schedule s = list_schedule(dfg, {});
  EXPECT_EQ(s.num_steps(), critical_path_length(dfg));
}

TEST(ListSched, ResourceLimitStretchesSchedule) {
  Dfg fir = make_fir(4);  // 4 muls then an add tree
  Schedule fast = list_schedule(fir, {});
  Schedule slow = list_schedule(fir, {{OpKind::Mul, 1}});
  EXPECT_GT(slow.num_steps(), fast.num_steps());
  // Verify the limit is honored.
  for (int step = 1; step <= slow.num_steps(); ++step) {
    int muls = 0;
    for (OpId op : slow.ops_in_step(fir, step)) {
      if (fir.op(op).kind == OpKind::Mul) ++muls;
    }
    EXPECT_LE(muls, 1);
  }
}

TEST(ListSched, LimitOfTwoMultipliers) {
  Dfg fir = make_fir(8);
  Schedule s = list_schedule(fir, {{OpKind::Mul, 2}});
  for (int step = 1; step <= s.num_steps(); ++step) {
    int muls = 0;
    for (OpId op : s.ops_in_step(fir, step)) {
      if (fir.op(op).kind == OpKind::Mul) ++muls;
    }
    EXPECT_LE(muls, 2);
  }
}

TEST(ForceDirected, MeetsLatencyBound) {
  Dfg fir = make_fir(6);
  const int latency = critical_path_length(fir) + 2;
  Schedule s = force_directed_schedule(fir, latency);
  EXPECT_LE(s.num_steps(), latency);
}

TEST(ForceDirected, BalancesMultipliers) {
  Dfg fir = make_fir(8);  // 8 muls; critical path ~ 1 mul + 3 adds
  const int latency = critical_path_length(fir) + 3;
  Schedule s = force_directed_schedule(fir, latency);
  // With balancing, no step should need all 8 multipliers.
  int peak = 0;
  for (int step = 1; step <= s.num_steps(); ++step) {
    int muls = 0;
    for (OpId op : s.ops_in_step(fir, step)) {
      if (fir.op(op).kind == OpKind::Mul) ++muls;
    }
    peak = std::max(peak, muls);
  }
  EXPECT_LT(peak, 8);
}

TEST(ForceDirected, RejectsInfeasibleLatency) {
  Dfg dfg = diamond();
  EXPECT_THROW(force_directed_schedule(dfg, 2), Error);
}

TEST(ForceDirected, ExactLatencyOfCriticalPathWorks) {
  Dfg dfg = diamond();
  Schedule s = force_directed_schedule(dfg, 3);
  EXPECT_EQ(s.num_steps(), 3);
}

TEST(PressureSched, ValidAndHonorsLimits) {
  Dfg fir = make_fir(8);
  Schedule s = min_pressure_schedule(fir, {{OpKind::Mul, 2}, {OpKind::Add, 1}});
  for (int step = 1; step <= s.num_steps(); ++step) {
    int muls = 0, adds = 0;
    for (OpId op : s.ops_in_step(fir, step)) {
      muls += fir.op(op).kind == OpKind::Mul ? 1 : 0;
      adds += fir.op(op).kind == OpKind::Add ? 1 : 0;
    }
    EXPECT_LE(muls, 2);
    EXPECT_LE(adds, 1);
  }
}

TEST(PressureSched, NeverMoreRegistersThanPlainList) {
  for (int taps : {8, 16}) {
    Dfg fir = make_fir(taps);
    const ResourceLimits limits = {{OpKind::Mul, 2}, {OpKind::Add, 1}};
    Schedule plain = list_schedule(fir, limits);
    Schedule tight = min_pressure_schedule(fir, limits);
    const int plain_live = max_live(fir, compute_lifetimes(fir, plain));
    const int tight_live = max_live(fir, compute_lifetimes(fir, tight));
    EXPECT_LE(tight_live, plain_live) << "taps " << taps;
  }
}

TEST(PressureSched, LatticeChainStaysNarrow) {
  Dfg lattice = make_lattice(6);
  Schedule s = min_pressure_schedule(lattice, {{OpKind::Mul, 1},
                                               {OpKind::Sub, 1}});
  const int live = max_live(lattice, compute_lifetimes(lattice, s));
  EXPECT_LE(live, 4);  // serial chain: a handful of values at a time
}

}  // namespace
}  // namespace lbist
