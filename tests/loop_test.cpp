// Loop-carried binding (the paper's stated out-of-scope case, implemented):
// tie validation, allocation units, the loop-aware binder, and the
// self-adjacency cost of loops on the diff-eq benchmark.

#include <gtest/gtest.h>

#include "binding/loop_binder.hpp"
#include "graph/bron_kerbosch.hpp"
#include "bist/allocator.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/parse.hpp"
#include "interconnect/build_datapath.hpp"
#include "rtl/controller.hpp"
#include "rtl/simulate.hpp"
#include "support/check.hpp"

namespace lbist {
namespace {

TEST(LoopTies, ValidationRules) {
  Dfg dfg("ties");
  VarId x = dfg.add_input("x");
  VarId k = dfg.add_input("k", /*port_resident=*/true);
  VarId x1 = dfg.add_op(OpKind::Add, x, x, "x1");
  dfg.mark_output(x1);
  // Carried var must be an output result; init must be an allocatable
  // input.
  EXPECT_THROW(dfg.tie_loop(x, x1), Error);   // swapped
  EXPECT_THROW(dfg.tie_loop(x1, k), Error);   // port-resident init
  dfg.tie_loop(x1, x);
  EXPECT_EQ(dfg.loop_ties().size(), 1u);
  EXPECT_THROW(dfg.tie_loop(x1, x), Error);   // duplicate
}

TEST(LoopTies, ParserRoundTrip) {
  auto parsed = parse_dfg(R"(
dfg acc
input s
portinput k
op add1 + s k -> s1 @1
output s1
carry s1 s
)");
  ASSERT_EQ(parsed.dfg.loop_ties().size(), 1u);
  const std::string printed = print_dfg(parsed.dfg, &*parsed.schedule);
  EXPECT_NE(printed.find("carry s1 s"), std::string::npos);
  auto reparsed = parse_dfg(printed);
  EXPECT_EQ(reparsed.dfg.loop_ties().size(), 1u);
}

TEST(AllocationUnits, TiedPairsMerge) {
  auto bench = make_paulin_loop();
  auto units = allocation_units(bench.design.dfg);
  int pairs = 0;
  for (const auto& u : units) pairs += u.vars.size() == 2 ? 1 : 0;
  EXPECT_EQ(pairs, 3);  // x/x1, u/u1, y/y1
}

TEST(LoopBinder, TiedVariablesShareARegister) {
  auto bench = make_paulin_loop();
  const Dfg& dfg = bench.design.dfg;
  auto lt = compute_lifetimes(dfg, *bench.design.schedule);
  auto rb = bind_registers_loop_aware(dfg, lt);
  rb.validate(dfg, lt);
  for (const auto& [carried, init] : dfg.loop_ties()) {
    EXPECT_EQ(rb.reg_of[carried], rb.reg_of[init])
        << dfg.var(carried).name;
  }
  // The classic HAL answer: around 6 registers with the loop variables
  // allocated (vs 4 + dedicated inputs in the paper's straight-line view).
  EXPECT_GE(rb.num_regs(), 5u);
  EXPECT_LE(rb.num_regs(), 7u);
}

TEST(LoopBinder, RejectsOverlappingTies) {
  // x1 is produced in step 1 but x is still needed in step 2: they cannot
  // share a register.
  auto parsed = parse_dfg(R"(
dfg bad
input x
portinput k
op add1 + x k -> x1 @1
op mul1 * x x1 -> y @2
output x1 y
carry x1 x
)");
  auto lt = compute_lifetimes(parsed.dfg, *parsed.schedule);
  EXPECT_THROW((void)bind_registers_loop_aware(parsed.dfg, lt), Error);
}

TEST(LoopBinder, DatapathExecutesOneIterationCorrectly) {
  auto bench = make_paulin_loop();
  const Dfg& dfg = bench.design.dfg;
  auto lt = compute_lifetimes(dfg, *bench.design.schedule);
  auto rb = bind_registers_loop_aware(dfg, lt);
  auto mb = ModuleBinding::bind(dfg, *bench.design.schedule,
                                parse_module_spec(bench.module_spec));
  auto dp = build_datapath(dfg, mb, rb);
  auto ctl = Controller::generate(dfg, *bench.design.schedule, rb, dp, lt);

  IdMap<VarId, std::uint32_t> inputs(dfg.num_vars(), 0);
  inputs[*dfg.find_var("x")] = 1;
  inputs[*dfg.find_var("u")] = 5;
  inputs[*dfg.find_var("y")] = 2;
  inputs[*dfg.find_var("dx")] = 3;
  inputs[*dfg.find_var("a")] = 10;
  inputs[*dfg.find_var("c3")] = 3;
  auto sim = simulate_datapath(dfg, dp, ctl, inputs, 8);
  EXPECT_TRUE(sim.ok());
  // x1 = x + dx = 4; y1 = y + u*dx = 17.
  EXPECT_EQ(sim.observed[*dfg.find_var("x1")], 4u);
  EXPECT_EQ(sim.observed[*dfg.find_var("y1")], 17u);
}

TEST(LoopBinder, LoopsCreateSelfAdjacency) {
  // The straight-line Paulin has loop state outside the allocation; the
  // looped version must write x1 into x's register — the adder reads and
  // writes the same register: self-adjacent.
  auto bench = make_paulin_loop();
  const Dfg& dfg = bench.design.dfg;
  auto lt = compute_lifetimes(dfg, *bench.design.schedule);
  auto rb = bind_registers_loop_aware(dfg, lt);
  auto mb = ModuleBinding::bind(dfg, *bench.design.schedule,
                                parse_module_spec(bench.module_spec));
  auto dp = build_datapath(dfg, mb, rb);
  EXPECT_FALSE(dp.self_adjacent_registers().empty());
  // BIST still solvable; the extra area reflects the loop's cost.
  BistAllocator alloc{AreaModel{}};
  auto sol = alloc.solve(dp);
  EXPECT_TRUE(sol.untestable_modules.empty());
  EXPECT_GT(sol.extra_area, 0.0);
}

TEST(LoopBinder, MultiIterationSimulationTracksReference) {
  auto bench = make_paulin_loop();
  const Dfg& dfg = bench.design.dfg;
  auto lt = compute_lifetimes(dfg, *bench.design.schedule);
  auto rb = bind_registers_loop_aware(dfg, lt);
  auto mb = ModuleBinding::bind(dfg, *bench.design.schedule,
                                parse_module_spec(bench.module_spec));
  auto dp = build_datapath(dfg, mb, rb);
  auto ctl = Controller::generate(dfg, *bench.design.schedule, rb, dp, lt);

  IdMap<VarId, std::uint32_t> inputs(dfg.num_vars(), 0);
  inputs[*dfg.find_var("x")] = 1;
  inputs[*dfg.find_var("u")] = 5;
  inputs[*dfg.find_var("y")] = 2;
  inputs[*dfg.find_var("dx")] = 3;
  inputs[*dfg.find_var("a")] = 10;
  inputs[*dfg.find_var("c3")] = 3;
  auto iters = simulate_datapath_loop(dfg, dp, ctl, inputs, 8, 4);
  ASSERT_EQ(iters.size(), 4u);
  for (const auto& r : iters) EXPECT_TRUE(r.ok());
  // x advances by dx every iteration: 1 -> 4 -> 7 -> 10 -> 13.
  EXPECT_EQ(iters[0].observed[*dfg.find_var("x1")], 4u);
  EXPECT_EQ(iters[1].observed[*dfg.find_var("x1")], 7u);
  EXPECT_EQ(iters[2].observed[*dfg.find_var("x1")], 10u);
  EXPECT_EQ(iters[3].observed[*dfg.find_var("x1")], 13u);
  // The loop-exit compare fires once x1 >= a (x1 = 13 on the last lap).
  EXPECT_EQ(iters[2].observed[*dfg.find_var("c")], 0u);   // 10 < 10 is false
  EXPECT_EQ(iters[1].observed[*dfg.find_var("c")], 1u);   // 7 < 10
}

TEST(LoopBinder, RegisterCountNearCliqueBound) {
  // The unit-conflict graph may be non-chordal; Bron-Kerbosch gives the
  // exact lower bound and the greedy binder should stay within +1.
  auto bench = make_paulin_loop();
  const Dfg& dfg = bench.design.dfg;
  auto lt = compute_lifetimes(dfg, *bench.design.schedule);
  auto units = allocation_units(dfg);
  UndirectedGraph g(units.size());
  for (std::size_t a = 0; a < units.size(); ++a) {
    for (std::size_t b = a + 1; b < units.size(); ++b) {
      bool conflict = false;
      for (VarId va : units[a].vars) {
        for (VarId vb : units[b].vars) {
          conflict = conflict || lt[va].overlaps(lt[vb]);
        }
      }
      if (conflict) g.add_edge(a, b);
    }
  }
  const std::size_t bound = max_clique_size(g);
  auto rb = bind_registers_loop_aware(dfg, lt);
  EXPECT_GE(rb.num_regs(), bound);
  EXPECT_LE(rb.num_regs(), bound + 1);
}

}  // namespace
}  // namespace lbist
