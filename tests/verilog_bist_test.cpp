// Tests for the self-testing RTL emitter (BILBO registers + BIST
// controller + golden-signature ROM).

#include <gtest/gtest.h>

#include "bist/selftest.hpp"
#include "bist/verilog_bist.hpp"
#include "core/compare.hpp"
#include "dfg/benchmarks.hpp"
#include "support/check.hpp"

namespace lbist {
namespace {

struct Emitted {
  ComparisonRow row;
  SelfTestResult st;
  std::string verilog;

  explicit Emitted(const Benchmark& bench)
      : row(compare_benchmark(bench)),
        st(run_self_test(row.testable.datapath, row.testable.bist, 250, 8)),
        verilog(emit_bist_verilog(row.testable.datapath, row.testable.bist,
                                  st, 250, 8)) {}
};

TEST(BistVerilog, EmitsPrimitivesAndTop) {
  Emitted e(make_ex1());
  EXPECT_NE(e.verilog.find("module lowbist_bilbo"), std::string::npos);
  EXPECT_NE(e.verilog.find("module lowbist_cbilbo"), std::string::npos);
  EXPECT_NE(e.verilog.find("module ex1_bist ("), std::string::npos);
  EXPECT_NE(e.verilog.find("bist_done"), std::string::npos);
  EXPECT_NE(e.verilog.find("bist_pass"), std::string::npos);
}

TEST(BistVerilog, InstantiatesOneTestRegisterPerDatapathRegister) {
  Emitted e(make_ex1());
  for (const auto& reg : e.row.testable.datapath.registers) {
    EXPECT_NE(e.verilog.find(" u_" + reg.name + " "), std::string::npos)
        << reg.name;
  }
}

class AllBenchGolden : public ::testing::TestWithParam<int> {};

TEST_P(AllBenchGolden, EmittedConstantsMatchEngineSignatures) {
  auto benches = paper_benchmarks();
  Emitted e(benches[static_cast<std::size_t>(GetParam())]);
  for (const auto& sigs : e.st.golden_signatures) {
    for (std::uint32_t sig : sigs) {
      std::ostringstream hex;
      hex << std::hex << sig;
      EXPECT_NE(e.verilog.find("8'h" + hex.str()), std::string::npos);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFive, AllBenchGolden, ::testing::Range(0, 5));

TEST(BistVerilog, GoldenSignaturesAppearAsConstants) {
  Emitted e(make_ex1());
  // Every golden signature of a register-observed module shows up in a
  // comparison.  (Hex, so render the expected literal.)
  for (std::size_t m = 0; m < e.st.golden_signatures.size(); ++m) {
    for (std::uint32_t sig : e.st.golden_signatures[m]) {
      std::ostringstream hex;
      hex << std::hex << sig;
      EXPECT_NE(e.verilog.find("8'h" + hex.str()), std::string::npos)
          << "module " << m << " signature " << hex.str();
    }
  }
}

TEST(BistVerilog, CbilboUsedExactlyWhenSolutionSaysSo) {
  for (const auto& bench : paper_benchmarks()) {
    Emitted e(bench);
    int cbilbo_instances = 0;
    std::size_t pos = 0;
    while ((pos = e.verilog.find("lowbist_cbilbo #(.WIDTH", pos)) !=
           std::string::npos) {
      ++cbilbo_instances;
      pos += 1;
    }
    EXPECT_EQ(cbilbo_instances,
              e.row.testable.bist.counts().cbilbo)
        << bench.name;
  }
}

TEST(BistVerilog, SubSessionCountMatchesPlan) {
  Emitted e(make_ex2());
  // N_SUBS localparam equals the sum over sessions of the widest function
  // set; at minimum the number of sessions.
  const auto pos = e.verilog.find("localparam N_SUBS = ");
  ASSERT_NE(pos, std::string::npos);
  const int n_subs = std::stoi(e.verilog.substr(pos + 20));
  int total_golden = 0;
  for (const auto& sigs : e.st.golden_signatures) {
    total_golden += static_cast<int>(sigs.size());
  }
  EXPECT_GE(n_subs, 1);
  EXPECT_LE(n_subs, total_golden);
}

TEST(BistVerilog, RejectsTransparentPlans) {
  auto row = compare_benchmark(make_tseng1());
  BistAllocator alloc{AreaModel{}};
  alloc.use_transparent_paths = true;
  auto sol = alloc.solve(row.testable.datapath);
  bool any_transparent = false;
  for (const auto& emb : sol.embeddings) {
    any_transparent =
        any_transparent || (emb.has_value() && emb->uses_transparency());
  }
  if (!any_transparent) GTEST_SKIP() << "solver found no transparent win";
  auto st = run_self_test(row.testable.datapath, sol, 100, 8);
  EXPECT_THROW(
      emit_bist_verilog(row.testable.datapath, sol, st, 100, 8), Error);
}

TEST(BistVerilog, PatternBudgetIsPeriodCapped) {
  Emitted e(make_ex1());
  EXPECT_NE(e.verilog.find("localparam PATTERNS = 250;"),
            std::string::npos);
  auto st4 = run_self_test(e.row.testable.datapath, e.row.testable.bist,
                           250, 4);
  const std::string v4 = emit_bist_verilog(e.row.testable.datapath,
                                           e.row.testable.bist, st4, 250, 4);
  EXPECT_NE(v4.find("localparam PATTERNS = 15;"), std::string::npos);
}

}  // namespace
}  // namespace lbist
