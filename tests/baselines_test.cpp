// Unit tests for the RALLOC- and SYNTEST-style baselines.

#include <gtest/gtest.h>

#include "baselines/ralloc.hpp"
#include "baselines/syntest.hpp"
#include "binding/traditional_binder.hpp"
#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/lifetime.hpp"
#include "graph/coloring.hpp"
#include "graph/conflict.hpp"
#include "interconnect/build_datapath.hpp"

namespace lbist {
namespace {

struct Fixture {
  explicit Fixture(Benchmark b) : bench(std::move(b)) {
    lt = compute_lifetimes(bench.design.dfg, *bench.design.schedule);
    cg = build_conflict_graph(bench.design.dfg, lt);
    mb = ModuleBinding::bind(bench.design.dfg, *bench.design.schedule,
                             parse_module_spec(bench.module_spec));
  }
  Benchmark bench;
  IdMap<VarId, LiveInterval> lt;
  VarConflictGraph cg;
  ModuleBinding mb;
};

TEST(Ralloc, ProducesValidBinding) {
  for (const auto& b : paper_benchmarks()) {
    Fixture f(b);
    auto rb = bind_registers_ralloc(f.bench.design.dfg, f.cg, f.mb);
    rb.validate(f.bench.design.dfg, f.lt);
    EXPECT_GE(rb.num_regs(), chordal_clique_number(f.cg.graph)) << b.name;
  }
}

TEST(Ralloc, LabellingMakesEveryAdjacentRegisterABilbo) {
  Fixture f(make_ex1());
  auto rb = bind_registers_ralloc(f.bench.design.dfg, f.cg, f.mb);
  auto dp = build_datapath(f.bench.design.dfg, f.mb, rb);
  AreaModel model;
  auto sol = ralloc_bist_labelling(dp, model);
  for (std::size_t r = 0; r < dp.registers.size(); ++r) {
    // ex1 has no idle registers: everything touches a module.
    EXPECT_TRUE(sol.roles[r] == BistRole::TpgSa ||
                sol.roles[r] == BistRole::Cbilbo);
  }
  // Self-adjacent registers are exactly the CBILBOs.
  auto self_adj = dp.self_adjacent_registers();
  EXPECT_EQ(static_cast<int>(self_adj.size()), sol.counts().cbilbo);
}

TEST(Ralloc, AvoidsSelfAdjacencyWhenPossible) {
  Fixture f(make_ex1());
  auto rb = bind_registers_ralloc(f.bench.design.dfg, f.cg, f.mb);
  auto dp = build_datapath(f.bench.design.dfg, f.mb, rb);
  // The style may pay registers to reduce self-adjacency; it should never
  // have MORE self-adjacent registers than the testability-oblivious
  // traditional binding.
  auto rb_trad = bind_registers_traditional(f.bench.design.dfg, f.cg, f.lt);
  auto dp_trad = build_datapath(f.bench.design.dfg, f.mb, rb_trad);
  EXPECT_LE(dp.self_adjacent_registers().size(),
            dp_trad.self_adjacent_registers().size());
}

TEST(Syntest, ProducesValidBinding) {
  for (const auto& b : paper_benchmarks()) {
    Fixture f(b);
    auto rb = bind_registers_syntest(f.bench.design.dfg, f.cg, f.mb);
    rb.validate(f.bench.design.dfg, f.lt);
  }
}

TEST(Syntest, NoCbilboEver) {
  for (const auto& b : paper_benchmarks()) {
    Fixture f(b);
    auto rb = bind_registers_syntest(f.bench.design.dfg, f.cg, f.mb);
    auto dp = build_datapath(f.bench.design.dfg, f.mb, rb);
    AreaModel model;
    auto sol = syntest_bist_labelling(dp, model);
    EXPECT_EQ(sol.counts().cbilbo, 0) << b.name;
  }
}

TEST(Syntest, UsesMoreRegistersThanMinimumOnPaulin) {
  // The template costs registers — the effect Table III shows (SYNTEST: 5
  // registers where ours needs 4).
  Fixture f(make_paulin());
  auto rb = bind_registers_syntest(f.bench.design.dfg, f.cg, f.mb);
  EXPECT_GT(rb.num_regs(), chordal_clique_number(f.cg.graph));
}

TEST(Baselines, PipelineIntegration) {
  auto bench = make_paulin();
  const auto protos = parse_module_spec(bench.module_spec);
  for (BinderKind kind : {BinderKind::Ralloc, BinderKind::Syntest}) {
    SynthesisOptions opts;
    opts.binder = kind;
    auto result = Synthesizer(opts).run(bench.design.dfg,
                                        *bench.design.schedule, protos);
    EXPECT_GE(result.num_registers(), 4);
    EXPECT_GT(result.bist.extra_area, 0.0);
  }
}

}  // namespace
}  // namespace lbist
