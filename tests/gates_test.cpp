// Gate-level netlist tests: builder correctness against the word-level
// reference semantics (exhaustive at width 4), gate counts, parallel
// evaluation, fault enumeration and BIST coverage on real structure.

#include <gtest/gtest.h>

#include "gates/gate_fault_sim.hpp"
#include "gates/module_builders.hpp"
#include "core/compare.hpp"
#include "gates/gate_selftest.hpp"
#include "gates/techmap.hpp"
#include "rtl/simulate.hpp"
#include "support/check.hpp"

namespace lbist {
namespace {

/// Evaluates a module netlist on a single (a, b) pair via the parallel
/// engine (pattern lane 0).
std::uint32_t eval_single(const ModuleNetlist& m, std::uint32_t a,
                          std::uint32_t b) {
  std::vector<std::uint64_t> a_bits(static_cast<std::size_t>(m.width), 0);
  std::vector<std::uint64_t> b_bits(static_cast<std::size_t>(m.width), 0);
  for (int i = 0; i < m.width; ++i) {
    a_bits[static_cast<std::size_t>(i)] = (a >> i) & 1u;
    b_bits[static_cast<std::size_t>(i)] = (b >> i) & 1u;
  }
  const auto out = m.eval(a_bits, b_bits);
  std::uint32_t y = 0;
  for (int i = 0; i < m.width; ++i) {
    if (out[static_cast<std::size_t>(i)] & 1u) y |= 1u << i;
  }
  return y;
}

class GateBuilders : public ::testing::TestWithParam<OpKind> {};

TEST_P(GateBuilders, ExhaustivelyMatchesReferenceAtWidth4) {
  const OpKind kind = GetParam();
  const int width = 4;
  ModuleNetlist m = build_module(kind, width);
  for (std::uint32_t a = 0; a < 16; ++a) {
    for (std::uint32_t b = 0; b < 16; ++b) {
      EXPECT_EQ(eval_single(m, a, b), eval_op(kind, a, b, width))
          << to_string(kind) << " " << a << "," << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GateBuilders,
                         ::testing::Values(OpKind::Add, OpKind::Sub,
                                           OpKind::Mul, OpKind::And,
                                           OpKind::Or, OpKind::Xor,
                                           OpKind::Lt, OpKind::Gt),
                         [](const auto& pinfo) {
                           return std::string(to_string(pinfo.param));
                         });

TEST(GateBuilders, RandomizedMatchAtWidth8) {
  const int width = 8;
  for (OpKind kind : {OpKind::Add, OpKind::Sub, OpKind::Mul}) {
    ModuleNetlist m = build_module(kind, width);
    std::uint32_t a = 17, b = 91;
    for (int t = 0; t < 200; ++t) {
      a = (a * 73 + 11) & 0xFF;
      b = (b * 29 + 5) & 0xFF;
      EXPECT_EQ(eval_single(m, a, b), eval_op(kind, a, b, width));
    }
  }
}

TEST(GateBuilders, DividerHasNoGateModel) {
  EXPECT_FALSE(has_gate_level_model(OpKind::Div));
  EXPECT_TRUE(has_gate_level_model(OpKind::Mul));
  EXPECT_THROW(build_module(OpKind::Div, 8), Error);
}

TEST(GateBuilders, GateCountsScaleAsAreaModelAssumes) {
  // Adder linear, multiplier quadratic — the area model's shape.
  const auto add4 = static_cast<double>(build_adder(4).netlist.gate_count());
  const auto add8 = static_cast<double>(build_adder(8).netlist.gate_count());
  EXPECT_NEAR(add8 / add4, 2.0, 0.3);
  const auto mul4 =
      static_cast<double>(build_multiplier(4).netlist.gate_count());
  const auto mul8 =
      static_cast<double>(build_multiplier(8).netlist.gate_count());
  EXPECT_GT(mul8 / mul4, 3.0);
}

TEST(GateNetlist, ParallelLanesAreIndependent) {
  // Lane p computes pattern p: fill two lanes with different operands.
  ModuleNetlist m = build_adder(4);
  std::vector<std::uint64_t> a_bits(4, 0), b_bits(4, 0);
  // lane 0: a=3, b=5;  lane 1: a=15, b=1.
  for (int i = 0; i < 4; ++i) {
    a_bits[static_cast<std::size_t>(i)] =
        (((3u >> i) & 1u)) | (static_cast<std::uint64_t>((15u >> i) & 1u)
                              << 1);
    b_bits[static_cast<std::size_t>(i)] =
        (((5u >> i) & 1u)) | (static_cast<std::uint64_t>((1u >> i) & 1u)
                              << 1);
  }
  const auto out = m.eval(a_bits, b_bits);
  std::uint32_t lane0 = 0, lane1 = 0;
  for (int i = 0; i < 4; ++i) {
    if (out[static_cast<std::size_t>(i)] & 1u) lane0 |= 1u << i;
    if ((out[static_cast<std::size_t>(i)] >> 1) & 1u) lane1 |= 1u << i;
  }
  EXPECT_EQ(lane0, 8u);   // 3 + 5
  EXPECT_EQ(lane1, 0u);   // 15 + 1 wraps at width 4
}

TEST(GateNetlist, FaultInjectionForcesNode) {
  ModuleNetlist m = build_bitwise(OpKind::And, 2);
  std::vector<std::uint64_t> ones(2, ~std::uint64_t{0});
  // Fault-free: 1&1 = 1 on both bits.
  auto out = m.eval(ones, ones);
  EXPECT_EQ(out[0] & 1u, 1u);
  // Stuck-at-0 on the bit-0 AND gate output.
  const int gate0 = static_cast<int>(m.netlist.num_nodes()) - 2;
  out = m.eval(ones, ones, gate0, false);
  EXPECT_EQ(out[0] & 1u, 0u);
  EXPECT_EQ(out[1] & 1u, 1u);
}

TEST(GateFaults, EnumerationCountsNodes) {
  ModuleNetlist m = build_adder(4);
  EXPECT_EQ(enumerate_gate_faults(m.netlist).size(),
            2 * m.netlist.num_nodes());
}

class GateCoverage : public ::testing::TestWithParam<OpKind> {};

TEST_P(GateCoverage, BistReachesHighInternalCoverage) {
  ModuleNetlist m = build_module(GetParam(), 8);
  auto result = simulate_gate_bist(m, 255);
  // Constants contribute a handful of untestable faults; everything else
  // should fall to a full LFSR period.
  EXPECT_GT(result.coverage(), 0.90) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Kinds, GateCoverage,
                         ::testing::Values(OpKind::Add, OpKind::Sub,
                                           OpKind::Mul, OpKind::And,
                                           OpKind::Xor),
                         [](const auto& pinfo) {
                           return std::string(to_string(pinfo.param));
                         });

TEST(GateCoverage, CorrelatedTpgsHurtAtGateLevelToo) {
  ModuleNetlist sub = build_subtractor(8);
  const auto indep = simulate_gate_bist(sub, 255, true);
  const auto corr = simulate_gate_bist(sub, 255, false);
  EXPECT_LT(corr.detected, indep.detected);
}

TEST(GateCoverage, MorePatternsNeverHurtEarly) {
  ModuleNetlist mul = build_multiplier(8);
  const auto few = simulate_gate_bist(mul, 16);
  const auto many = simulate_gate_bist(mul, 200);
  EXPECT_GE(many.detected, few.detected);
}

TEST(TechMap, NandOnlyAndEquivalent) {
  for (OpKind kind : {OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Xor,
                      OpKind::Lt}) {
    ModuleNetlist m = build_module(kind, 4);
    TechMapped mapped = map_to_nand(m.netlist);
    // Only NAND cells (plus sources).
    for (std::size_t i = 0; i < mapped.netlist.num_nodes(); ++i) {
      const GateKind k = mapped.netlist.node(i).kind;
      EXPECT_TRUE(k == GateKind::Nand || k == GateKind::Input ||
                  k == GateKind::Const0 || k == GateKind::Const1)
          << to_string(kind) << " node " << i;
    }
    // Exhaustive equivalence at width 4.
    for (std::uint32_t a = 0; a < 16; ++a) {
      for (std::uint32_t b = 0; b < 16; ++b) {
        std::vector<std::uint64_t> bits(8, 0);
        for (int i = 0; i < 4; ++i) {
          bits[static_cast<std::size_t>(i)] = (a >> i) & 1u;
          bits[static_cast<std::size_t>(i + 4)] = (b >> i) & 1u;
        }
        const auto ref = m.netlist.eval(bits);
        const auto got = mapped.netlist.eval(bits);
        ASSERT_EQ(ref.size(), got.size());
        for (std::size_t o = 0; o < ref.size(); ++o) {
          EXPECT_EQ(ref[o] & 1u, got[o] & 1u)
              << to_string(kind) << " " << a << "," << b << " out " << o;
        }
      }
    }
  }
}

TEST(TechMap, NandCountsAreReasonable) {
  // Naive mapping: XOR = 4 NANDs, AND = 2, OR = 3 -> a full adder costs
  // ~15 cells, the 8-bit ripple adder ~113.
  const std::size_t adder = nand_cells(OpKind::Add, 8);
  EXPECT_GE(adder, 90u);
  EXPECT_LE(adder, 130u);
  // Multiplier stays quadratic after mapping.
  EXPECT_GT(nand_cells(OpKind::Mul, 8), 4 * nand_cells(OpKind::Mul, 4));
}

TEST(TechMap, BufIsFree) {
  GateNetlist nl;
  const int a = nl.add_input();
  const int buf = nl.add_gate(GateKind::Buf, a);
  nl.mark_output(buf);
  TechMapped mapped = map_to_nand(nl);
  EXPECT_EQ(mapped.nand_count, 0u);
}

TEST(GateSelfTest, GradesEveryTestableModule) {
  auto row = compare_benchmark(make_ex1());
  auto result =
      run_gate_self_test(row.testable.datapath, row.testable.bist, 250, 8);
  EXPECT_EQ(result.modules.size(), row.testable.datapath.modules.size());
  EXPECT_GT(result.coverage(), 0.9);
  for (const auto& m : result.modules) {
    EXPECT_TRUE(m.gate_level);
    EXPECT_GT(m.coverage.coverage(), 0.9);
  }
}

TEST(GateSelfTest, DividerFallsBackToPortModel) {
  auto row = compare_benchmark(make_ex2());  // has a divider
  auto result =
      run_gate_self_test(row.testable.datapath, row.testable.bist, 250, 8);
  bool saw_fallback = false;
  for (const auto& m : result.modules) {
    if (!m.gate_level) {
      saw_fallback = true;
      EXPECT_TRUE(row.testable.datapath.modules[m.module].proto
                      .supports_kind(OpKind::Div));
    }
  }
  EXPECT_TRUE(saw_fallback);
  EXPECT_GT(result.coverage(), 0.85);
}

TEST(GateSelfTest, AllBenchmarksReachHighGateCoverage) {
  for (const auto& row : compare_paper_benchmarks()) {
    auto result = run_gate_self_test(row.testable.datapath,
                                     row.testable.bist, 250, 8);
    EXPECT_GT(result.coverage(), 0.88) << row.name;
  }
}

}  // namespace
}  // namespace lbist
