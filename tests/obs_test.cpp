// Observability layer tests: TraceRecorder span semantics, export formats,
// the decision-event sink, the bounded histogram reservoir and Prometheus
// exposition — plus one end-to-end check that a real BIST-aware synthesis
// emits the paper-level events the docs promise.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "binding/cbilbo_check.hpp"
#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random_dfg.hpp"
#include "obs/events.hpp"
#include "obs/profiler.hpp"
#include "obs/prom.hpp"
#include "obs/trace.hpp"
#include "service/metrics.hpp"
#include "support/json.hpp"

// Real-timer profiler tests deliver SIGPROF at high rates, which TSan's
// signal interception serializes into spurious deadlock reports; the
// logic-only paths (ring, guard, spanmark) stay covered everywhere.
#if defined(__SANITIZE_THREAD__)
#define LBIST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LBIST_TSAN 1
#endif
#endif

// Global allocation counter: the disabled-tracing path promises zero
// allocations, which we verify by replacing operator new for the whole
// test binary and measuring the delta around the instrumented region.
namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace lbist {
namespace {

TEST(TraceRecorder, NestedSpansExportParentFirst) {
  TraceRecorder rec;
  rec.set_enabled(true);
  {
    auto outer = trace_span(&rec, "outer");
    ASSERT_TRUE(outer.active());
    outer.arg("design", "ex1");
    {
      auto inner = trace_span(&rec, "inner");
      inner.arg("registers", std::uint64_t{3});
    }
  }
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by (start, -duration): the enclosing span comes first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
}

TEST(TraceRecorder, DisabledRecorderRecordsNothing) {
  TraceRecorder rec;  // disabled by default
  {
    auto s = trace_span(&rec, "ignored");
    EXPECT_FALSE(s.active());
    s.arg("k", "v");  // must be a safe no-op
    rec.set_enabled(true);  // enabling mid-span must not resurrect it
  }
  EXPECT_EQ(rec.event_count(), 0u);
  auto s2 = trace_span(static_cast<TraceRecorder*>(nullptr), "null");
  EXPECT_FALSE(s2.active());
}

TEST(TraceRecorder, DisabledPathDoesNotAllocate) {
  TraceRecorder rec;  // disabled
  // Warm up any lazy TLS/stream state outside the measured window.
  { auto warm = trace_span(&rec, "warm"); }
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    auto a = trace_span(static_cast<TraceRecorder*>(nullptr), "a");
    auto b = trace_span(&rec, "b");
    b.arg("key", "value");
    b.arg("n", std::uint64_t{42});
    b.arg_bool("flag", true);
  }
  EXPECT_EQ(g_news.load(std::memory_order_relaxed), before);
}

TEST(TraceRecorder, PerThreadBuffersMergeDeterministically) {
  TraceRecorder rec;
  rec.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpans = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kSpans; ++i) {
        auto s = trace_span(&rec, "work");
        s.arg("thread", static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(rec.event_count(),
            static_cast<std::size_t>(kThreads * kSpans));

  const auto a = rec.snapshot();
  const auto b = rec.snapshot();  // same events -> identical order
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].tid, b[i].tid);
    EXPECT_EQ(a[i].start_ns, b[i].start_ns);
    EXPECT_EQ(a[i].args_json, b[i].args_json);
  }
  // Thread ordinals are recorder-assigned and dense.
  for (const auto& e : a) EXPECT_LT(e.tid, kThreads + 1u);
}

TEST(TraceRecorder, ChromeExportIsValidTraceEventJson) {
  TraceRecorder rec;
  rec.set_enabled(true);
  {
    auto s = trace_span(&rec, "binding");
    s.arg("binder", "bist");
    s.arg("registers", std::uint64_t{3});
  }
  { auto s = trace_span(&rec, "bist"); }
  std::ostringstream os;
  rec.write_chrome(os);

  const Json doc = Json::parse(os.str());
  ASSERT_TRUE(doc.is_object());
  const Json& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.size(), 2u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_TRUE(e.at("name").is_string());
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_TRUE(e.at("pid").is_number());
    EXPECT_TRUE(e.at("tid").is_number());
  }
  // The span args made it through as a JSON object.
  EXPECT_EQ(events.at(0).at("args").at("binder").as_string(), "bist");
  EXPECT_EQ(events.at(0).at("args").at("registers").as_number(), 3.0);
}

TEST(TraceRecorder, JsonlExportIsOneObjectPerLine) {
  TraceRecorder rec;
  rec.set_enabled(true);
  { auto s = trace_span(&rec, "a"); }
  { auto s = trace_span(&rec, "b"); }
  std::ostringstream os;
  rec.write_jsonl(os);
  std::istringstream in(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const Json obj = Json::parse(line);
    EXPECT_TRUE(obj.is_object());
    EXPECT_TRUE(obj.at("name").is_string());
    ++lines;
  }
  EXPECT_EQ(lines, 2u);

  rec.clear();
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(AlgorithmEvents, CountersMirrorWithoutRetainingEvents) {
  MetricsRegistry metrics;
  AlgorithmEvents sink(&metrics, /*keep_events=*/false);
  EXPECT_FALSE(sink.recording());

  sink.pves_rank("x", 1, 2, 0);
  sink.assign("x", 0, 1, true, {});
  sink.case_override(1, "x", 0, 1);
  sink.case_override(2, "y", 1, 0);
  sink.cbilbo_checked("x", 0, false);
  sink.cbilbo_avoided("x", 0, 1);
  sink.cbilbo_forced(0, 1, 2);
  sink.mux_input("M1", 0, 'L', false);
  sink.mux_input("M1", 1, 'L', true);
  sink.port_flip("M1");
  sink.bist_role(0, "TPG");
  sink.bist_role(1, "CBILBO");
  sink.bist_greedy_fallback();

  EXPECT_TRUE(sink.snapshot().empty());  // counters-only mode
  EXPECT_EQ(sink.count("case_override"), 2u);
  EXPECT_EQ(sink.count("mux_input"), 1u);
  EXPECT_EQ(sink.count("mux_merge"), 1u);

  const Json dump = metrics.to_json();
  const Json& counters = dump.at("counters");
  EXPECT_EQ(counters.at("binding.case1_overrides").as_number(), 1.0);
  EXPECT_EQ(counters.at("binding.case2_overrides").as_number(), 1.0);
  EXPECT_EQ(counters.at("cbilbo.forced").as_number(), 1.0);
  EXPECT_EQ(counters.at("cbilbo.avoided").as_number(), 1.0);
  EXPECT_EQ(counters.at("interconnect.mux_merges").as_number(), 1.0);
  EXPECT_EQ(counters.at("interconnect.port_flips").as_number(), 1.0);
  EXPECT_EQ(counters.at("bist.roles_tpg").as_number(), 1.0);
  EXPECT_EQ(counters.at("bist.roles_cbilbo").as_number(), 1.0);
  EXPECT_EQ(counters.at("bist.greedy_fallbacks").as_number(), 1.0);
}

TEST(AlgorithmEvents, KeepEventsRetainsTypedDetail) {
  AlgorithmEvents sink(nullptr, /*keep_events=*/true);
  sink.assign("v3", 2, 1, false, {{0, 3}, {2, 1}});
  sink.cbilbo_forced(1, 0, 2);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, "assign");
  EXPECT_EQ(events[0].detail.at("var").as_string(), "v3");
  EXPECT_EQ(events[0].detail.at("candidates").size(), 2u);
  EXPECT_EQ(events[1].kind, "cbilbo_forced");
  EXPECT_EQ(events[1].detail.at("lemma_case").as_number(), 2.0);

  std::ostringstream os;
  sink.write_jsonl(os);
  std::istringstream in(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(Json::parse(line).is_object());
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(Histogram, ReservoirBoundsMemoryButKeepsExactAggregates) {
  Histogram h;  // default 4096-sample reservoir
  constexpr int kSamples = 20000;
  for (int i = 1; i <= kSamples; ++i) h.record(static_cast<double>(i));

  EXPECT_EQ(h.reservoir_size(), Histogram::kDefaultReservoir);
  const auto s = h.summarize();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kSamples));
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, static_cast<double>(kSamples));
  EXPECT_DOUBLE_EQ(s.mean, (kSamples + 1) / 2.0);
  // Percentiles are estimates over a uniform sample: loose sanity bands.
  EXPECT_GT(s.p50, 0.35 * kSamples);
  EXPECT_LT(s.p50, 0.65 * kSamples);
  EXPECT_GT(s.p99, s.p95);
  EXPECT_GE(s.p95, s.p50);
}

TEST(Histogram, DeterministicAcrossRuns) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 10000; ++i) {
    const double v = static_cast<double>((i * 37) % 1001);
    a.record(v);
    b.record(v);
  }
  const auto sa = a.summarize();
  const auto sb = b.summarize();
  EXPECT_EQ(sa.p50, sb.p50);
  EXPECT_EQ(sa.p95, sb.p95);
  EXPECT_EQ(sa.p99, sb.p99);
}

TEST(Histogram, ExactPercentilesBelowCapacity) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  const auto s = h.summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_NEAR(s.p95, 95.05, 0.01);
  EXPECT_NEAR(s.p99, 99.01, 0.01);
}

TEST(MetricsRegistry, DumpHasSnapshotTimestamp) {
  MetricsRegistry reg;
  reg.counter("jobs_ok").inc();
  const Json dump = reg.to_json();
  ASSERT_TRUE(dump.is_object());
  EXPECT_GT(dump.at("snapshot_unix_ms").as_number(), 0.0);
  EXPECT_EQ(dump.at("counters").at("jobs_ok").as_number(), 1.0);
}

TEST(Prometheus, MetricNamesAreSanitized) {
  EXPECT_EQ(prom_metric_name("binding.case1_overrides"),
            "binding_case1_overrides");
  EXPECT_EQ(prom_metric_name("job ms/synth"), "job_ms_synth");
}

TEST(Prometheus, LabelValuesEscapeQuoteBackslashNewline) {
  EXPECT_EQ(prom_escape_label_value("plain"), "plain");
  EXPECT_EQ(prom_escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(prom_escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_escape_label_value("a\nb"), "a\\nb");
}

TEST(Prometheus, ExpositionRendersEscapedLabelsOnEverySeries) {
  MetricsRegistry reg;
  reg.counter("cbilbo.forced").inc(3);
  reg.gauge("queue_depth").set(2.0);
  reg.histogram("job_ms").record(1.5);
  const std::string text = prometheus_exposition(
      reg, "lowbist", {{"instance", "node\"1\n"}});

  EXPECT_NE(text.find("# TYPE lowbist_cbilbo_forced counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE lowbist_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE lowbist_job_ms summary"), std::string::npos);
  // The escaped label value is attached to series of every instrument
  // type, with quote and newline escaped exactly once.
  const std::string label = "instance=\"node\\\"1\\n\"";
  EXPECT_NE(text.find("lowbist_cbilbo_forced{" + label + "} 3"),
            std::string::npos);
  EXPECT_NE(text.find("lowbist_queue_depth{" + label + "}"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("lowbist_job_ms_count{" + label + "} 1"),
            std::string::npos);
  // No raw newline may survive inside any line's label section.
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.find("node\"1"), std::string::npos) << line;
  }
}

TEST(Prometheus, RoundTripsThroughRegistryJsonDump) {
  MetricsRegistry reg;
  reg.counter("jobs_ok").inc(7);
  const std::string live = prometheus_exposition(reg);
  const std::string offline = prometheus_exposition(reg.to_json());
  EXPECT_EQ(live, offline);
}

// End-to-end: a real BIST-aware synthesis run must surface the paper's
// decision points — and its cbilbo_forced events must agree with an
// independent Lemma-2 evaluation of the final binding (the same
// cross-check the fuzzer's events oracle applies).
TEST(ObsIntegration, Ex1SynthesisEmitsPaperDecisions) {
  auto bench = make_ex1();
  const auto protos = parse_module_spec(bench.module_spec);

  TraceRecorder rec;
  rec.set_enabled(true);
  MetricsRegistry metrics;
  AlgorithmEvents events(&metrics, /*keep_events=*/true);

  SynthesisOptions opts;
  opts.binder = BinderKind::BistAware;
  opts.trace = &rec;
  opts.events = &events;
  const SynthesisResult result = Synthesizer(opts).run(
      bench.design.dfg, *bench.design.schedule, protos);

  // Pipeline phases all appear as spans.
  std::vector<std::string> names;
  for (const auto& e : rec.snapshot()) names.push_back(e.name);
  for (const char* phase :
       {"sched", "conflict_graph", "binding", "interconnect", "bist"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), phase), names.end())
        << "missing span: " << phase;
  }

  // The paper's decision events fired.
  EXPECT_GT(events.count("pves_rank"), 0u);
  EXPECT_GT(events.count("assign"), 0u);
  EXPECT_GE(events.count("case_override"), 1u);
  EXPECT_GT(events.count("cbilbo_checked"), 0u);
  EXPECT_GT(events.count("bist_role"), 0u);

  // cbilbo_forced must match an independent Lemma-2 evaluation.
  const auto lemma =
      forced_cbilbos(bench.design.dfg, result.modules, result.registers);
  EXPECT_EQ(events.count("cbilbo_forced"), lemma.size());

  // And the counter mirror saw the same totals.
  const Json dump = metrics.to_json();
  EXPECT_EQ(dump.at("counters").at("binding.assignments").as_number(),
            static_cast<double>(events.count("assign")));
}

// --- sampling profiler -----------------------------------------------------

TEST(SpanMark, MarkingPathDoesNotAllocate) {
  spanmark::set_enabled(true);
  {  // warm any lazy TLS state outside the measured window
    auto warm = trace_span(static_cast<TraceRecorder*>(nullptr), "warm");
  }
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    auto outer = trace_span(static_cast<TraceRecorder*>(nullptr), "outer");
    auto inner = trace_span(static_cast<TraceRecorder*>(nullptr), "inner");
    inner.arg("k", "v");  // args are dropped on mark-only spans
  }
  spanmark::set_enabled(false);
  EXPECT_EQ(g_news.load(std::memory_order_relaxed), before);
}

TEST(SpanMark, SnapshotKeepsInnermostEntriesOnDeepStacks) {
  spanmark::set_enabled(true);
  // 36 pushes overflow kMaxDepth (32): the excess names are not stored,
  // but depth still tracks so the pops below unwind cleanly.
  for (int i = 0; i < 36; ++i) spanmark::push(i % 2 == 0 ? "even" : "odd");
  EXPECT_EQ(spanmark::depth(), 36);
  const char* got[8];
  const int n = spanmark::snapshot(got, 8);
  ASSERT_EQ(n, 8);
  for (int i = 0; i < n; ++i) {
    // Entries 24..31 of the stored stack, outermost first.
    EXPECT_STREQ(got[i], (24 + i) % 2 == 0 ? "even" : "odd");
  }
  for (int i = 0; i < 36; ++i) spanmark::pop();
  EXPECT_EQ(spanmark::depth(), 0);
  spanmark::push("solo");
  EXPECT_EQ(spanmark::snapshot(got, 8), 1);
  EXPECT_STREQ(got[0], "solo");
  spanmark::pop();
  spanmark::set_enabled(false);
}

TEST(SampleRing, OverflowCountsDropsInsteadOfBlocking) {
  obs::SampleRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (std::size_t i = 0; i < ring.capacity(); ++i) {
    obs::RawSample* slot = ring.begin_push();
    ASSERT_NE(slot, nullptr);
    slot->num_frames = 0;
    slot->num_spans = 1;
    slot->spans[0] = "filler";
    ring.commit_push();
  }
  for (int i = 0; i < 3; ++i) EXPECT_EQ(ring.begin_push(), nullptr);
  EXPECT_EQ(ring.dropped(), 3u);

  obs::RawSample out;
  std::size_t drained = 0;
  while (ring.pop(&out)) ++drained;
  EXPECT_EQ(drained, ring.capacity());  // drops lost samples, kept the rest
  EXPECT_EQ(ring.dropped(), 3u);        // accounting survives the drain

  // Space reclaimed by the reader is writable again.
  EXPECT_NE(ring.begin_push(), nullptr);
}

TEST(Profiler, HandlerReentrancyGuardCountsNestedDeliveries) {
  ASSERT_TRUE(obs::Profiler::test_enter_guard());
  const std::uint64_t before = obs::Profiler::handler_reentries();
  // A SIGPROF landing while the handler runs must bounce off, counted.
  EXPECT_FALSE(obs::Profiler::test_enter_guard());
  EXPECT_FALSE(obs::Profiler::test_enter_guard());
  EXPECT_EQ(obs::Profiler::handler_reentries(), before + 2);
  obs::Profiler::test_leave_guard();
  ASSERT_TRUE(obs::Profiler::test_enter_guard());
  obs::Profiler::test_leave_guard();
}

TEST(Profiler, SyntheticSampleCapturesSpanStack) {
  obs::Profiler& prof = obs::Profiler::instance();
  spanmark::set_enabled(true);
  {
    auto outer = trace_span(static_cast<TraceRecorder*>(nullptr), "outer");
    auto inner = trace_span(static_cast<TraceRecorder*>(nullptr), "inner");
    prof.sample_now_for_testing();
  }
  spanmark::set_enabled(false);
  const obs::ProfileReport rep = prof.collect();
  ASSERT_GE(rep.samples, 1u);

  auto self_of = [&](const char* name) -> std::uint64_t {
    for (const auto& s : rep.spans) {
      if (s.name == name) return s.self_samples;
    }
    return 0;
  };
  auto total_of = [&](const char* name) -> std::uint64_t {
    for (const auto& s : rep.spans) {
      if (s.name == name) return s.total_samples;
    }
    return 0;
  };
  EXPECT_GE(self_of("inner"), 1u);   // innermost gets the self sample
  EXPECT_EQ(self_of("outer"), 0u);   // enclosing span does not
  EXPECT_GE(total_of("outer"), 1u);  // but it is on the sample's stack

  // The folded export roots the stack at the innermost span.
  std::ostringstream os;
  rep.write_folded(os);
  EXPECT_NE(os.str().find("inner;"), std::string::npos);
}

TEST(Profiler, CollectIsCumulativeAcrossDumps) {
  // A mid-run dump (the server's {"action":"dump"}) must not steal samples
  // from a later export: collect() reports everything since start().
  obs::Profiler& prof = obs::Profiler::instance();
  const std::uint64_t base = prof.collect().samples;
  for (int i = 0; i < 3; ++i) prof.sample_now_for_testing();
  EXPECT_EQ(prof.collect().samples, base + 3);
  for (int i = 0; i < 2; ++i) prof.sample_now_for_testing();
  EXPECT_EQ(prof.collect().samples, base + 5);  // dump #1 stole nothing
}

#if !defined(LBIST_TSAN)
TEST(Profiler, TimerSamplesAttributeToPipelineSpans) {
  // Same workload shape as bench_scaling's CI tier, small enough for a
  // test: the BIST-aware binder and the interconnect builder both burn
  // visible CPU, so at 997 Hz both spans must collect self samples.
  RandomDfgOptions o;
  o.seed = 424242;
  o.ops_per_step = 8;
  o.num_steps = 250;
  o.num_inputs = 12;
  o.reuse_probability = 0.9;
  o.chain_probability = 0.3;
  const RandomDfg rd = make_random_dfg(o);
  const auto protos = minimal_module_spec(rd.dfg, rd.schedule);
  SynthesisOptions so;
  so.binder = BinderKind::BistAware;
  so.lifetime.hold_outputs_to_end = false;

  obs::Profiler& prof = obs::Profiler::instance();
  obs::Profiler::attach_current_thread();
  obs::ProfilerOptions po;
  po.hz = 997;
  prof.start(po);

  std::uint64_t binding_self = 0;
  std::uint64_t interconnect_self = 0;
  std::uint64_t total = 0;
  std::string folded;
  // Samples are statistical; keep synthesizing (bounded) until both spans
  // have been hit rather than flaking on one unlucky scheduling run.
  for (int attempt = 0; attempt < 10; ++attempt) {
    const SynthesisResult res =
        Synthesizer(so).run(rd.dfg, rd.schedule, protos);
    ASSERT_GT(res.num_registers(), 0);
    const obs::ProfileReport rep = prof.collect();
    total += rep.samples;
    for (const auto& s : rep.spans) {
      if (s.name == "binding") binding_self += s.self_samples;
      if (s.name == "interconnect") interconnect_self += s.self_samples;
    }
    std::ostringstream os;
    rep.write_folded(os);
    folded += os.str();
    if (binding_self > 0 && interconnect_self > 0) break;
  }
  prof.stop();

  EXPECT_GT(total, 0u);
  EXPECT_GT(binding_self, 0u) << "no samples attributed to the binder";
  EXPECT_GT(interconnect_self, 0u)
      << "no samples attributed to the interconnect pass";

  // Every folded line is "frames count" with a positive count.
  std::istringstream lines(folded);
  std::string line;
  std::size_t checked = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_FALSE(line.substr(0, sp).empty());
    EXPECT_GT(std::stoull(line.substr(sp + 1)), 0u);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(Profiler, BackgroundDrainerOutrunsATinyRing) {
  // With a 4-slot ring, a multi-second run can only keep more than 4
  // samples if the background drainer folds the ring while sampling is
  // still live — this is what keeps hour-long captures representative
  // instead of freezing the first few seconds of the run.
  obs::Profiler& prof = obs::Profiler::instance();
  obs::Profiler::attach_current_thread();
  obs::ProfilerOptions po;
  po.hz = 997;
  po.ring_slots = 4;
  prof.start(po);
  std::uint64_t sink = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1200);
  while (std::chrono::steady_clock::now() < deadline) {
    for (std::uint64_t i = 0; i < 1000; ++i) sink += i * i;
  }
  // Defeats optimizing the spin away without a deprecated volatile store.
  asm volatile("" : : "r"(sink) : "memory");
  prof.stop();
  const obs::ProfileReport rep = prof.collect();
  EXPECT_GT(rep.samples, 4u);
}
#endif  // !LBIST_TSAN

// --- labeled metric families ----------------------------------------------

TEST(Prometheus, LabeledMetricEncodesAndSanitizes) {
  EXPECT_EQ(labeled_metric("shard.conns", {{"shard", "0"}}),
            "shard.conns|shard=0");
  EXPECT_EQ(labeled_metric("m", {{"a", "1"}, {"b", "2"}}), "m|a=1|b=2");
  EXPECT_EQ(labeled_metric("m", {}), "m");
  // The encoding's delimiters cannot be smuggled through keys or values.
  EXPECT_EQ(labeled_metric("m", {{"a|b", "c=d"}}), "m|a_b=c_d");
}

TEST(Prometheus, LabeledSeriesGroupIntoOneFamily) {
  MetricsRegistry reg;
  reg.counter(labeled_metric("shard.requests", {{"shard", "0"}})).inc();
  reg.counter(labeled_metric("shard.requests", {{"shard", "1"}})).inc(2);
  reg.gauge(labeled_metric("shard.conns", {{"shard", "1"}})).set(3);
  const std::string text = prometheus_exposition(reg);

  // Exactly one TYPE header for the family, one series per shard.
  const std::string header = "# TYPE lowbist_shard_requests counter";
  const std::size_t first = text.find(header);
  ASSERT_NE(first, std::string::npos) << text;
  EXPECT_EQ(text.find(header, first + 1), std::string::npos);
  EXPECT_NE(text.find("lowbist_shard_requests{shard=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lowbist_shard_requests{shard=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("lowbist_shard_conns{shard=\"1\"} 3"),
            std::string::npos);
}

TEST(Prometheus, LabeledHistogramsShareSummaryHeader) {
  MetricsRegistry reg;
  reg.histogram(labeled_metric("shard.loop_iter_ms", {{"shard", "0"}}))
      .record(1.0);
  reg.histogram(labeled_metric("shard.loop_iter_ms", {{"shard", "1"}}))
      .record(2.0);
  const std::string text = prometheus_exposition(reg);

  const std::string header = "# TYPE lowbist_shard_loop_iter_ms summary";
  const std::size_t first = text.find(header);
  ASSERT_NE(first, std::string::npos) << text;
  EXPECT_EQ(text.find(header, first + 1), std::string::npos);
  EXPECT_NE(
      text.find("lowbist_shard_loop_iter_ms{shard=\"0\",quantile=\"0.5\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find("lowbist_shard_loop_iter_ms{shard=\"1\",quantile=\"0.5\"} 2"),
      std::string::npos);
  EXPECT_NE(text.find("lowbist_shard_loop_iter_ms_count{shard=\"0\"} 1"),
            std::string::npos);
}

TEST(Prometheus, EmbeddedLabelValuesAreEscaped) {
  MetricsRegistry reg;
  reg.counter(labeled_metric("c", {{"k", "a\"b\\c\nd"}})).inc();
  const std::string text = prometheus_exposition(reg);
  EXPECT_NE(text.find("lowbist_c{k=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace lbist
