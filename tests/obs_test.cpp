// Observability layer tests: TraceRecorder span semantics, export formats,
// the decision-event sink, the bounded histogram reservoir and Prometheus
// exposition — plus one end-to-end check that a real BIST-aware synthesis
// emits the paper-level events the docs promise.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "binding/cbilbo_check.hpp"
#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "obs/events.hpp"
#include "obs/prom.hpp"
#include "obs/trace.hpp"
#include "service/metrics.hpp"
#include "support/json.hpp"

// Global allocation counter: the disabled-tracing path promises zero
// allocations, which we verify by replacing operator new for the whole
// test binary and measuring the delta around the instrumented region.
namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace lbist {
namespace {

TEST(TraceRecorder, NestedSpansExportParentFirst) {
  TraceRecorder rec;
  rec.set_enabled(true);
  {
    auto outer = trace_span(&rec, "outer");
    ASSERT_TRUE(outer.active());
    outer.arg("design", "ex1");
    {
      auto inner = trace_span(&rec, "inner");
      inner.arg("registers", std::uint64_t{3});
    }
  }
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by (start, -duration): the enclosing span comes first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
}

TEST(TraceRecorder, DisabledRecorderRecordsNothing) {
  TraceRecorder rec;  // disabled by default
  {
    auto s = trace_span(&rec, "ignored");
    EXPECT_FALSE(s.active());
    s.arg("k", "v");  // must be a safe no-op
    rec.set_enabled(true);  // enabling mid-span must not resurrect it
  }
  EXPECT_EQ(rec.event_count(), 0u);
  auto s2 = trace_span(static_cast<TraceRecorder*>(nullptr), "null");
  EXPECT_FALSE(s2.active());
}

TEST(TraceRecorder, DisabledPathDoesNotAllocate) {
  TraceRecorder rec;  // disabled
  // Warm up any lazy TLS/stream state outside the measured window.
  { auto warm = trace_span(&rec, "warm"); }
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    auto a = trace_span(static_cast<TraceRecorder*>(nullptr), "a");
    auto b = trace_span(&rec, "b");
    b.arg("key", "value");
    b.arg("n", std::uint64_t{42});
    b.arg_bool("flag", true);
  }
  EXPECT_EQ(g_news.load(std::memory_order_relaxed), before);
}

TEST(TraceRecorder, PerThreadBuffersMergeDeterministically) {
  TraceRecorder rec;
  rec.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpans = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kSpans; ++i) {
        auto s = trace_span(&rec, "work");
        s.arg("thread", static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(rec.event_count(),
            static_cast<std::size_t>(kThreads * kSpans));

  const auto a = rec.snapshot();
  const auto b = rec.snapshot();  // same events -> identical order
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].tid, b[i].tid);
    EXPECT_EQ(a[i].start_ns, b[i].start_ns);
    EXPECT_EQ(a[i].args_json, b[i].args_json);
  }
  // Thread ordinals are recorder-assigned and dense.
  for (const auto& e : a) EXPECT_LT(e.tid, kThreads + 1u);
}

TEST(TraceRecorder, ChromeExportIsValidTraceEventJson) {
  TraceRecorder rec;
  rec.set_enabled(true);
  {
    auto s = trace_span(&rec, "binding");
    s.arg("binder", "bist");
    s.arg("registers", std::uint64_t{3});
  }
  { auto s = trace_span(&rec, "bist"); }
  std::ostringstream os;
  rec.write_chrome(os);

  const Json doc = Json::parse(os.str());
  ASSERT_TRUE(doc.is_object());
  const Json& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.size(), 2u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_TRUE(e.at("name").is_string());
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_TRUE(e.at("pid").is_number());
    EXPECT_TRUE(e.at("tid").is_number());
  }
  // The span args made it through as a JSON object.
  EXPECT_EQ(events.at(0).at("args").at("binder").as_string(), "bist");
  EXPECT_EQ(events.at(0).at("args").at("registers").as_number(), 3.0);
}

TEST(TraceRecorder, JsonlExportIsOneObjectPerLine) {
  TraceRecorder rec;
  rec.set_enabled(true);
  { auto s = trace_span(&rec, "a"); }
  { auto s = trace_span(&rec, "b"); }
  std::ostringstream os;
  rec.write_jsonl(os);
  std::istringstream in(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const Json obj = Json::parse(line);
    EXPECT_TRUE(obj.is_object());
    EXPECT_TRUE(obj.at("name").is_string());
    ++lines;
  }
  EXPECT_EQ(lines, 2u);

  rec.clear();
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(AlgorithmEvents, CountersMirrorWithoutRetainingEvents) {
  MetricsRegistry metrics;
  AlgorithmEvents sink(&metrics, /*keep_events=*/false);
  EXPECT_FALSE(sink.recording());

  sink.pves_rank("x", 1, 2, 0);
  sink.assign("x", 0, 1, true, {});
  sink.case_override(1, "x", 0, 1);
  sink.case_override(2, "y", 1, 0);
  sink.cbilbo_checked("x", 0, false);
  sink.cbilbo_avoided("x", 0, 1);
  sink.cbilbo_forced(0, 1, 2);
  sink.mux_input("M1", 0, 'L', false);
  sink.mux_input("M1", 1, 'L', true);
  sink.port_flip("M1");
  sink.bist_role(0, "TPG");
  sink.bist_role(1, "CBILBO");
  sink.bist_greedy_fallback();

  EXPECT_TRUE(sink.snapshot().empty());  // counters-only mode
  EXPECT_EQ(sink.count("case_override"), 2u);
  EXPECT_EQ(sink.count("mux_input"), 1u);
  EXPECT_EQ(sink.count("mux_merge"), 1u);

  const Json dump = metrics.to_json();
  const Json& counters = dump.at("counters");
  EXPECT_EQ(counters.at("binding.case1_overrides").as_number(), 1.0);
  EXPECT_EQ(counters.at("binding.case2_overrides").as_number(), 1.0);
  EXPECT_EQ(counters.at("cbilbo.forced").as_number(), 1.0);
  EXPECT_EQ(counters.at("cbilbo.avoided").as_number(), 1.0);
  EXPECT_EQ(counters.at("interconnect.mux_merges").as_number(), 1.0);
  EXPECT_EQ(counters.at("interconnect.port_flips").as_number(), 1.0);
  EXPECT_EQ(counters.at("bist.roles_tpg").as_number(), 1.0);
  EXPECT_EQ(counters.at("bist.roles_cbilbo").as_number(), 1.0);
  EXPECT_EQ(counters.at("bist.greedy_fallbacks").as_number(), 1.0);
}

TEST(AlgorithmEvents, KeepEventsRetainsTypedDetail) {
  AlgorithmEvents sink(nullptr, /*keep_events=*/true);
  sink.assign("v3", 2, 1, false, {{0, 3}, {2, 1}});
  sink.cbilbo_forced(1, 0, 2);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, "assign");
  EXPECT_EQ(events[0].detail.at("var").as_string(), "v3");
  EXPECT_EQ(events[0].detail.at("candidates").size(), 2u);
  EXPECT_EQ(events[1].kind, "cbilbo_forced");
  EXPECT_EQ(events[1].detail.at("lemma_case").as_number(), 2.0);

  std::ostringstream os;
  sink.write_jsonl(os);
  std::istringstream in(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(Json::parse(line).is_object());
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(Histogram, ReservoirBoundsMemoryButKeepsExactAggregates) {
  Histogram h;  // default 4096-sample reservoir
  constexpr int kSamples = 20000;
  for (int i = 1; i <= kSamples; ++i) h.record(static_cast<double>(i));

  EXPECT_EQ(h.reservoir_size(), Histogram::kDefaultReservoir);
  const auto s = h.summarize();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kSamples));
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, static_cast<double>(kSamples));
  EXPECT_DOUBLE_EQ(s.mean, (kSamples + 1) / 2.0);
  // Percentiles are estimates over a uniform sample: loose sanity bands.
  EXPECT_GT(s.p50, 0.35 * kSamples);
  EXPECT_LT(s.p50, 0.65 * kSamples);
  EXPECT_GT(s.p99, s.p95);
  EXPECT_GE(s.p95, s.p50);
}

TEST(Histogram, DeterministicAcrossRuns) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 10000; ++i) {
    const double v = static_cast<double>((i * 37) % 1001);
    a.record(v);
    b.record(v);
  }
  const auto sa = a.summarize();
  const auto sb = b.summarize();
  EXPECT_EQ(sa.p50, sb.p50);
  EXPECT_EQ(sa.p95, sb.p95);
  EXPECT_EQ(sa.p99, sb.p99);
}

TEST(Histogram, ExactPercentilesBelowCapacity) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  const auto s = h.summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_NEAR(s.p95, 95.05, 0.01);
  EXPECT_NEAR(s.p99, 99.01, 0.01);
}

TEST(MetricsRegistry, DumpHasSnapshotTimestamp) {
  MetricsRegistry reg;
  reg.counter("jobs_ok").inc();
  const Json dump = reg.to_json();
  ASSERT_TRUE(dump.is_object());
  EXPECT_GT(dump.at("snapshot_unix_ms").as_number(), 0.0);
  EXPECT_EQ(dump.at("counters").at("jobs_ok").as_number(), 1.0);
}

TEST(Prometheus, MetricNamesAreSanitized) {
  EXPECT_EQ(prom_metric_name("binding.case1_overrides"),
            "binding_case1_overrides");
  EXPECT_EQ(prom_metric_name("job ms/synth"), "job_ms_synth");
}

TEST(Prometheus, LabelValuesEscapeQuoteBackslashNewline) {
  EXPECT_EQ(prom_escape_label_value("plain"), "plain");
  EXPECT_EQ(prom_escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(prom_escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_escape_label_value("a\nb"), "a\\nb");
}

TEST(Prometheus, ExpositionRendersEscapedLabelsOnEverySeries) {
  MetricsRegistry reg;
  reg.counter("cbilbo.forced").inc(3);
  reg.gauge("queue_depth").set(2.0);
  reg.histogram("job_ms").record(1.5);
  const std::string text = prometheus_exposition(
      reg, "lowbist", {{"instance", "node\"1\n"}});

  EXPECT_NE(text.find("# TYPE lowbist_cbilbo_forced counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE lowbist_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE lowbist_job_ms summary"), std::string::npos);
  // The escaped label value is attached to series of every instrument
  // type, with quote and newline escaped exactly once.
  const std::string label = "instance=\"node\\\"1\\n\"";
  EXPECT_NE(text.find("lowbist_cbilbo_forced{" + label + "} 3"),
            std::string::npos);
  EXPECT_NE(text.find("lowbist_queue_depth{" + label + "}"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("lowbist_job_ms_count{" + label + "} 1"),
            std::string::npos);
  // No raw newline may survive inside any line's label section.
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.find("node\"1"), std::string::npos) << line;
  }
}

TEST(Prometheus, RoundTripsThroughRegistryJsonDump) {
  MetricsRegistry reg;
  reg.counter("jobs_ok").inc(7);
  const std::string live = prometheus_exposition(reg);
  const std::string offline = prometheus_exposition(reg.to_json());
  EXPECT_EQ(live, offline);
}

// End-to-end: a real BIST-aware synthesis run must surface the paper's
// decision points — and its cbilbo_forced events must agree with an
// independent Lemma-2 evaluation of the final binding (the same
// cross-check the fuzzer's events oracle applies).
TEST(ObsIntegration, Ex1SynthesisEmitsPaperDecisions) {
  auto bench = make_ex1();
  const auto protos = parse_module_spec(bench.module_spec);

  TraceRecorder rec;
  rec.set_enabled(true);
  MetricsRegistry metrics;
  AlgorithmEvents events(&metrics, /*keep_events=*/true);

  SynthesisOptions opts;
  opts.binder = BinderKind::BistAware;
  opts.trace = &rec;
  opts.events = &events;
  const SynthesisResult result = Synthesizer(opts).run(
      bench.design.dfg, *bench.design.schedule, protos);

  // Pipeline phases all appear as spans.
  std::vector<std::string> names;
  for (const auto& e : rec.snapshot()) names.push_back(e.name);
  for (const char* phase :
       {"sched", "conflict_graph", "binding", "interconnect", "bist"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), phase), names.end())
        << "missing span: " << phase;
  }

  // The paper's decision events fired.
  EXPECT_GT(events.count("pves_rank"), 0u);
  EXPECT_GT(events.count("assign"), 0u);
  EXPECT_GE(events.count("case_override"), 1u);
  EXPECT_GT(events.count("cbilbo_checked"), 0u);
  EXPECT_GT(events.count("bist_role"), 0u);

  // cbilbo_forced must match an independent Lemma-2 evaluation.
  const auto lemma =
      forced_cbilbos(bench.design.dfg, result.modules, result.registers);
  EXPECT_EQ(events.count("cbilbo_forced"), lemma.size());

  // And the counter mirror saw the same totals.
  const Json dump = metrics.to_json();
  EXPECT_EQ(dump.at("counters").at("binding.assignments").as_number(),
            static_cast<double>(events.count("assign")));
}

}  // namespace
}  // namespace lbist
