// DFG optimization passes: common-subexpression elimination and dead-code
// removal, with semantics-preservation property checks.

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "dfg/benchmarks.hpp"
#include "dfg/optimize.hpp"
#include "rtl/simulate.hpp"

namespace lbist {
namespace {

/// Reference values of every named output, keyed by name (names survive
/// the rewrite; merged outputs keep the survivor's name).
std::map<std::string, std::uint32_t> output_values(
    const Dfg& dfg, const std::map<std::string, std::uint32_t>& in,
    int width) {
  IdMap<VarId, std::uint32_t> inputs(dfg.num_vars(), 0);
  for (const auto& v : dfg.vars()) {
    if (v.is_input()) inputs[v.id] = in.at(v.name);
  }
  auto values = evaluate_dfg(dfg, inputs, width);
  std::map<std::string, std::uint32_t> out;
  for (const auto& v : dfg.vars()) {
    if (v.is_output) out[v.name] = values[v.id];
  }
  return out;
}

TEST(Cse, MergesPaulinsDuplicateMultiply) {
  // HAL computes u*dx twice (mul2 and mul6).
  auto bench = make_paulin();
  auto opt = eliminate_common_subexpressions(bench.design.dfg);
  EXPECT_EQ(opt.removed_ops.size(), 1u);
  EXPECT_EQ(opt.removed_ops[0], "mul6");
  EXPECT_EQ(opt.dfg.num_ops(), bench.design.dfg.num_ops() - 1);
}

TEST(Cse, CascadesThroughConsumers) {
  // x = a+b; y = a+b; p = x*c; q = y*c  -> one add, one mul.
  Dfg dfg("casc");
  VarId a = dfg.add_input("a");
  VarId b = dfg.add_input("b");
  VarId c = dfg.add_input("c");
  VarId x = dfg.add_op(OpKind::Add, a, b, "x");
  VarId y = dfg.add_op(OpKind::Add, a, b, "y");
  VarId p = dfg.add_op(OpKind::Mul, x, c, "p");
  VarId q = dfg.add_op(OpKind::Mul, y, c, "q");
  dfg.mark_output(p);
  dfg.mark_output(q);
  dfg.validate();
  auto opt = eliminate_common_subexpressions(dfg);
  EXPECT_EQ(opt.dfg.num_ops(), 2u);
  EXPECT_EQ(opt.removed_ops.size(), 2u);
}

TEST(Cse, CommutativityNormalized) {
  Dfg dfg("comm");
  VarId a = dfg.add_input("a");
  VarId b = dfg.add_input("b");
  VarId x = dfg.add_op(OpKind::Mul, a, b, "x");
  VarId y = dfg.add_op(OpKind::Mul, b, a, "y");  // same product
  VarId z = dfg.add_op(OpKind::Sub, a, b, "z");
  VarId w = dfg.add_op(OpKind::Sub, b, a, "w");  // NOT the same difference
  for (VarId v : {x, y, z, w}) dfg.mark_output(v);
  dfg.validate();
  auto opt = eliminate_common_subexpressions(dfg);
  EXPECT_EQ(opt.dfg.num_ops(), 3u);  // muls merge, subs stay
}

TEST(Cse, PreservesOutputSemantics) {
  std::mt19937_64 rng(7);
  for (const auto& bench : paper_benchmarks()) {
    auto opt = eliminate_common_subexpressions(bench.design.dfg);
    for (int trial = 0; trial < 10; ++trial) {
      std::map<std::string, std::uint32_t> in;
      for (const auto& v : bench.design.dfg.vars()) {
        if (v.is_input()) {
          in[v.name] = static_cast<std::uint32_t>(rng() & 0xFF);
        }
      }
      auto before = output_values(bench.design.dfg, in, 8);
      auto after = output_values(opt.dfg, in, 8);
      for (const auto& [name, value] : after) {
        EXPECT_EQ(value, before.at(name)) << bench.name << " " << name;
      }
    }
  }
}

TEST(DeadCode, RemovesUnreachableChain) {
  // Build without validate(): t2 chain is dead.
  Dfg dfg("dead");
  VarId a = dfg.add_input("a");
  VarId b = dfg.add_input("b");
  VarId t1 = dfg.add_op(OpKind::Add, a, b, "t1");
  VarId t2 = dfg.add_op(OpKind::Mul, a, b, "t2");
  VarId t3 = dfg.add_op(OpKind::Mul, t2, b, "t3");
  (void)t3;
  dfg.mark_output(t1);
  auto opt = remove_dead_code(dfg);
  EXPECT_EQ(opt.dfg.num_ops(), 1u);
  EXPECT_EQ(opt.removed_ops.size(), 2u);
  // Only the inputs the survivor needs remain.
  EXPECT_TRUE(opt.dfg.find_var("a").has_value());
  EXPECT_TRUE(opt.dfg.find_var("t1").has_value());
  EXPECT_FALSE(opt.dfg.find_var("t2").has_value());
}

TEST(DeadCode, ControlResultsAreLive) {
  auto bench = make_paulin();
  auto opt = remove_dead_code(bench.design.dfg);
  // Nothing in Paulin is dead (the compare feeds the controller).
  EXPECT_TRUE(opt.removed_ops.empty());
  EXPECT_EQ(opt.dfg.num_ops(), bench.design.dfg.num_ops());
}

TEST(DeadCode, NoOpOnCleanBenchmarks) {
  for (const auto& bench : paper_benchmarks()) {
    auto opt = remove_dead_code(bench.design.dfg);
    EXPECT_TRUE(opt.removed_ops.empty()) << bench.name;
  }
}

}  // namespace
}  // namespace lbist
