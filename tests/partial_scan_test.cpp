// Partial-scan baseline tests: S-graph construction, cycle detection,
// minimum feedback vertex sets and scan-plan pricing.

#include <gtest/gtest.h>

#include "baselines/partial_scan.hpp"
#include "core/compare.hpp"
#include "dfg/benchmarks.hpp"

namespace lbist {
namespace {

SGraph ring(std::size_t n) {
  SGraph g;
  g.adjacency.resize(n);
  for (std::size_t v = 0; v < n; ++v) g.adjacency[v] = {(v + 1) % n};
  return g;
}

TEST(SGraph, AcyclicDetection) {
  SGraph chain;
  chain.adjacency = {{1}, {2}, {}};
  std::vector<bool> none(3, false);
  EXPECT_TRUE(is_acyclic_without(chain, none));

  SGraph loop = ring(3);
  EXPECT_FALSE(is_acyclic_without(loop, none));
  std::vector<bool> cut = {true, false, false};
  EXPECT_TRUE(is_acyclic_without(loop, cut));
}

TEST(Mfvs, RingNeedsExactlyOne) {
  auto fvs = minimum_feedback_vertex_set(ring(5));
  EXPECT_EQ(fvs.size(), 1u);
}

TEST(Mfvs, SelfLoopIsForced) {
  SGraph g;
  g.adjacency = {{0}, {2}, {}};  // register 0 feeds itself
  auto fvs = minimum_feedback_vertex_set(g);
  ASSERT_EQ(fvs.size(), 1u);
  EXPECT_EQ(fvs[0], 0u);
}

TEST(Mfvs, TwoDisjointCyclesNeedTwo) {
  SGraph g;
  g.adjacency = {{1}, {0}, {3}, {2}};
  EXPECT_EQ(minimum_feedback_vertex_set(g).size(), 2u);
}

TEST(Mfvs, DagNeedsNothing) {
  SGraph g;
  g.adjacency = {{1, 2}, {2}, {}};
  EXPECT_TRUE(minimum_feedback_vertex_set(g).empty());
}

TEST(Mfvs, GreedyAlsoBreaksAllCycles) {
  // Force the greedy path via exact_limit = 0.
  SGraph g = ring(6);
  g.adjacency[0].push_back(3);  // extra chord
  auto fvs = minimum_feedback_vertex_set(g, /*exact_limit=*/0);
  std::vector<bool> removed(6, false);
  for (std::size_t v : fvs) removed[v] = true;
  EXPECT_TRUE(is_acyclic_without(g, removed));
}

TEST(PartialScan, BenchmarkDatapathsHaveCycles) {
  // Every paper benchmark writes results back into registers that feed
  // modules, so some scan is always needed.
  for (const auto& row : compare_paper_benchmarks()) {
    auto plan = plan_partial_scan(row.testable.datapath, AreaModel{});
    EXPECT_FALSE(plan.scanned.empty()) << row.name;
    std::vector<bool> removed(row.testable.datapath.registers.size(),
                              false);
    for (std::size_t v : plan.scanned) removed[v] = true;
    EXPECT_TRUE(
        is_acyclic_without(build_sgraph(row.testable.datapath), removed));
  }
}

TEST(PartialScan, CostScalesWithChainLength) {
  AreaModel model;
  auto row = compare_benchmark(make_ex1());
  auto plan = plan_partial_scan(row.testable.datapath, model);
  EXPECT_DOUBLE_EQ(plan.extra_area,
                   static_cast<double>(plan.scanned.size()) *
                       model.mux_gates_per_bit * model.bit_width);
  EXPECT_GT(plan.overhead_percent(row.testable.datapath, model), 0.0);
}

TEST(PartialScan, SelfAdjacentRegistersAlwaysScanned) {
  for (const auto& row : compare_paper_benchmarks()) {
    const auto& dp = row.traditional.datapath;
    auto plan = plan_partial_scan(dp, AreaModel{});
    for (std::size_t r : dp.self_adjacent_registers()) {
      EXPECT_NE(std::find(plan.scanned.begin(), plan.scanned.end(), r),
                plan.scanned.end())
          << row.name << " register " << dp.registers[r].name;
    }
  }
}

}  // namespace
}  // namespace lbist
