// Chip-level self-test engine and MISR aliasing analysis tests.

#include <gtest/gtest.h>

#include "bist/aliasing.hpp"
#include "bist/fault_sim.hpp"
#include "bist/selftest.hpp"
#include "core/compare.hpp"
#include "dfg/benchmarks.hpp"

namespace lbist {
namespace {

constexpr int kWidth = 8;

class SelfTestBenchmarks : public ::testing::TestWithParam<int> {};

TEST_P(SelfTestBenchmarks, PlanDetectsNearlyAllFaultsThroughTheNetlist) {
  auto benches = paper_benchmarks();
  auto row = compare_benchmark(benches[static_cast<std::size_t>(GetParam())]);
  auto result =
      run_self_test(row.testable.datapath, row.testable.bist, 250, kWidth);
  EXPECT_EQ(result.faults_injected,
            static_cast<int>(row.testable.datapath.modules.size()) * 6 *
                kWidth);
  EXPECT_GT(result.coverage(), 0.95)
      << benches[static_cast<std::size_t>(GetParam())].name;
  // Golden signatures exist for every (module, function) pair.
  for (std::size_t m = 0; m < row.testable.datapath.modules.size(); ++m) {
    EXPECT_EQ(result.golden_signatures[m].size(),
              row.testable.datapath.modules[m].proto.supports.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllFive, SelfTestBenchmarks,
                         ::testing::Range(0, 5));

TEST(SelfTest, TraditionalArmAlsoExecutes) {
  auto row = compare_benchmark(make_ex1());
  auto result = run_self_test(row.traditional.datapath,
                              row.traditional.bist, 250, kWidth);
  EXPECT_GT(result.coverage(), 0.9);
}

TEST(SelfTest, BogusEmbeddingRejected) {
  auto row = compare_benchmark(make_ex1());
  BistSolution broken = row.testable.bist;
  // Point a TPG at a register that does not feed the module's left port.
  for (auto& emb : broken.embeddings) {
    if (emb.has_value()) {
      const auto& mod = row.testable.datapath.modules[emb->module];
      for (std::size_t r = 0; r < row.testable.datapath.registers.size();
           ++r) {
        if (mod.left_sources.count(r) == 0) {
          emb->tpg_left = r;
          break;
        }
      }
      break;
    }
  }
  EXPECT_THROW(
      run_self_test(row.testable.datapath, broken, 50, kWidth), Error);
}

TEST(SelfTest, EscapesAreConsistentWithCounts) {
  auto row = compare_benchmark(make_ex2());
  auto result =
      run_self_test(row.testable.datapath, row.testable.bist, 250, kWidth);
  EXPECT_EQ(result.faults_injected - result.faults_detected,
            static_cast<int>(result.escapes.size()));
}

TEST(SelfTest, MatchesStandaloneFaultSimulatorPerModule) {
  // The standalone grader and the netlist-level engine implement the same
  // semantics; totals should be close (seeds differ, so allow slack).
  auto row = compare_benchmark(make_ex1());
  auto chip =
      run_self_test(row.testable.datapath, row.testable.bist, 250, kWidth);
  int standalone = 0;
  for (const auto& mod : row.testable.datapath.modules) {
    standalone +=
        simulate_module_bist(mod.proto, kWidth, 250).detected;
  }
  EXPECT_NEAR(chip.faults_detected, standalone, 4);
}

TEST(Aliasing, AsymptoticIsTwoToMinusWidth) {
  EXPECT_DOUBLE_EQ(misr_aliasing_asymptotic(8), 1.0 / 256.0);
  EXPECT_DOUBLE_EQ(misr_aliasing_asymptotic(16), 1.0 / 65536.0);
}

TEST(Aliasing, EmpiricalMatchesAsymptoticForSmallWidth) {
  // 4-bit MISR: expect ~1/16 = 6.25% aliasing over random error streams.
  auto est = misr_aliasing_empirical(4, 64, 20000, 7);
  EXPECT_NEAR(est.probability, 1.0 / 16.0, 0.02);
}

TEST(Aliasing, WiderMisrAliasesLess) {
  auto narrow = misr_aliasing_empirical(4, 64, 5000, 7);
  auto wide = misr_aliasing_empirical(12, 64, 5000, 7);
  EXPECT_LT(wide.probability, narrow.probability);
}

TEST(Aliasing, WidthForEscapeProbability) {
  EXPECT_EQ(misr_width_for_escape_probability(1e-3), 10);
  EXPECT_EQ(misr_width_for_escape_probability(0.3), 2);
}

}  // namespace
}  // namespace lbist
