# CLI round trip: bench dump -> synth with every emitter -> sanity-grep.
execute_process(COMMAND ${LOWBIST} bench ex1
                OUTPUT_FILE ${WORKDIR}/cli_ex1.dfg RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench dump failed")
endif()

execute_process(
  COMMAND ${LOWBIST} synth ${WORKDIR}/cli_ex1.dfg --modules "1+,1*"
          --plan --selftest --verilog --ctrl-verilog --testbench --vcd
          --dot --width 8
  OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "synth failed")
endif()
foreach(needle
    "BIST solution:" "test plan:" "chip-level self-test:"
    "module ex1 (" "module ex1_ctrl (" "module ex1_tb;"
    "$enddefinitions $end" "digraph ex1")
  string(FIND "${out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "missing '${needle}' in synth output")
  endif()
endforeach()

execute_process(
  COMMAND ${LOWBIST} compare ${WORKDIR}/cli_ex1.dfg --modules "1+,1*" --json
  OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "compare --json failed")
endif()
string(FIND "${out}" "\"reduction_percent\"" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "missing reduction_percent in JSON")
endif()

execute_process(
  COMMAND ${LOWBIST} optimize ${WORKDIR}/cli_ex1.dfg
  OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "optimize failed")
endif()
