// Controller-program invariants, property-tested over random designs:
// every operation is issued exactly once at its scheduled step, every
// allocatable variable is written exactly once, no register is written
// twice in a word, and mux selects always point at a real source.

#include <gtest/gtest.h>

#include "binding/bist_aware_binder.hpp"
#include "binding/traditional_binder.hpp"
#include "dfg/random_dfg.hpp"
#include "graph/conflict.hpp"
#include "interconnect/build_datapath.hpp"
#include "rtl/controller.hpp"

namespace lbist {
namespace {

class ControllerInvariants : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ControllerInvariants, HoldOnRandomDesigns) {
  RandomDfgOptions opts;
  opts.seed = GetParam();
  auto rd = make_random_dfg(opts);
  const Dfg& dfg = rd.dfg;
  auto lt = compute_lifetimes(dfg, rd.schedule);
  auto cg = build_conflict_graph(dfg, lt);
  auto mb = ModuleBinding::bind(dfg, rd.schedule,
                                minimal_module_spec(dfg, rd.schedule));

  for (int binder = 0; binder < 2; ++binder) {
    RegisterBinding rb = binder == 0
                             ? bind_registers_bist_aware(dfg, cg, mb)
                             : bind_registers_traditional(dfg, cg, lt);
    auto dp = build_datapath(dfg, mb, rb);
    auto ctl = Controller::generate(dfg, rd.schedule, rb, dp, lt);

    IdMap<OpId, int> issued(dfg.num_ops(), 0);
    IdMap<VarId, int> written(dfg.num_vars(), 0);
    for (int s = 0; s <= ctl.num_steps(); ++s) {
      const ControlWord& word = ctl.word(s);
      for (std::size_t m = 0; m < word.modules.size(); ++m) {
        const ModuleControl& mc = word.modules[m];
        if (!mc.active) continue;
        ++issued[mc.instance];
        EXPECT_EQ(rd.schedule.step(mc.instance), s)
            << dfg.op(mc.instance).name;
        // Selects point into the actual port source lists.
        EXPECT_LT(mc.left_select,
                  static_cast<int>(dp.modules[m].left_sources.size()));
        EXPECT_LT(mc.right_select,
                  static_cast<int>(dp.modules[m].right_sources.size()));
        EXPECT_GE(mc.left_select, 0);
        EXPECT_GE(mc.right_select, 0);
      }
      for (std::size_t r = 0; r < word.regs.size(); ++r) {
        const RegControl& rc = word.regs[r];
        if (!rc.enable) continue;
        ASSERT_TRUE(rc.var.valid());
        ++written[rc.var];
        const auto sources = Controller::register_sources(dp, r);
        EXPECT_GE(rc.select, 0);
        EXPECT_LT(rc.select, static_cast<int>(sources.size()));
      }
    }
    for (const auto& op : dfg.ops()) {
      EXPECT_EQ(issued[op.id], 1) << op.name;
    }
    for (const auto& v : dfg.vars()) {
      if (v.allocatable()) {
        EXPECT_EQ(written[v.id], 1) << v.name;
      } else {
        EXPECT_EQ(written[v.id], v.port_resident ? 1 : 0) << v.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerInvariants,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace lbist
