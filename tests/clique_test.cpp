// Weighted clique partitioning and the clique-partitioning register binder.

#include <gtest/gtest.h>

#include "binding/clique_binder.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/lifetime.hpp"
#include "graph/clique_partition.hpp"
#include "graph/conflict.hpp"
#include "graph/coloring.hpp"

namespace lbist {
namespace {

TEST(CliquePartition, SingletonsWhenNoEdges) {
  UndirectedGraph g(4);  // empty compatibility graph
  auto part = clique_partition(g, [](std::size_t, std::size_t) { return 1.0; });
  EXPECT_EQ(part.cliques.size(), 4u);
}

TEST(CliquePartition, CompleteGraphBecomesOneClique) {
  UndirectedGraph g(5);
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = a + 1; b < 5; ++b) g.add_edge(a, b);
  }
  auto part = clique_partition(g, [](std::size_t, std::size_t) { return 1.0; });
  EXPECT_EQ(part.cliques.size(), 1u);
  EXPECT_EQ(part.cliques[0].size(), 5u);
}

TEST(CliquePartition, WeightsSteerMergeOrder) {
  // Path 0-1-2 in the compatibility graph; 0 and 2 not compatible.
  UndirectedGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  // Heavier edge (1,2) merges first; 0 is left alone.
  auto part = clique_partition(g, [](std::size_t a, std::size_t b) {
    return (a == 1 && b == 2) || (a == 2 && b == 1) ? 5.0 : 1.0;
  });
  ASSERT_EQ(part.cliques.size(), 2u);
  EXPECT_EQ(part.clique_of[1], part.clique_of[2]);
  EXPECT_NE(part.clique_of[0], part.clique_of[1]);
}

TEST(CliquePartition, EveryGroupIsAClique) {
  UndirectedGraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(3, 4);
  auto part = clique_partition(g, [](std::size_t, std::size_t) { return 1.0; });
  for (const auto& clique : part.cliques) {
    for (std::size_t i = 0; i < clique.size(); ++i) {
      for (std::size_t j = i + 1; j < clique.size(); ++j) {
        EXPECT_TRUE(g.adjacent(clique[i], clique[j]));
      }
    }
  }
}

TEST(CliqueBinder, ValidOnAllBenchmarks) {
  for (const auto& bench : paper_benchmarks()) {
    auto lt = compute_lifetimes(bench.design.dfg, *bench.design.schedule);
    auto cg = build_conflict_graph(bench.design.dfg, lt);
    auto mb = ModuleBinding::bind(bench.design.dfg, *bench.design.schedule,
                                  parse_module_spec(bench.module_spec));
    auto rb = bind_registers_clique(bench.design.dfg, cg, mb);
    rb.validate(bench.design.dfg, lt);
    // Clique partitioning has no minimality guarantee but should stay close
    // on these small interval graphs.
    EXPECT_LE(rb.num_regs(), chordal_clique_number(cg.graph) + 2)
        << bench.name;
  }
}

}  // namespace
}  // namespace lbist
