// Width-parameterized sweeps: every width-sensitive layer (reference
// semantics, data-path simulation, fault simulation, self-test, gate
// builders) must behave at 4, 8, 16 and 32 bits — masking bugs love
// boundary widths.

#include <gtest/gtest.h>

#include "binding/bist_aware_binder.hpp"
#include "bist/fault_sim.hpp"
#include "bist/selftest.hpp"
#include "core/compare.hpp"
#include "dfg/benchmarks.hpp"
#include "gates/gate_fault_sim.hpp"
#include "graph/conflict.hpp"
#include "interconnect/build_datapath.hpp"
#include "rtl/controller.hpp"
#include "rtl/simulate.hpp"

namespace lbist {
namespace {

class Widths : public ::testing::TestWithParam<int> {};

TEST_P(Widths, EvalOpMasksCorrectly) {
  const int w = GetParam();
  const std::uint32_t mask =
      w == 32 ? 0xFFFFFFFFu : ((std::uint32_t{1} << w) - 1);
  EXPECT_EQ(eval_op(OpKind::Add, mask, 1, w), 0u);         // wraps to 0
  EXPECT_EQ(eval_op(OpKind::Sub, 0, 1, w), mask);          // borrows to max
  EXPECT_EQ(eval_op(OpKind::Mul, mask, mask, w), 1u);      // (-1)^2 mod 2^w
  EXPECT_EQ(eval_op(OpKind::Xor, mask, mask, w), 0u);
}

TEST_P(Widths, DatapathSimulationMatchesReference) {
  const int w = GetParam();
  auto bench = make_ex1();
  const Dfg& dfg = bench.design.dfg;
  auto lt = compute_lifetimes(dfg, *bench.design.schedule);
  auto cg = build_conflict_graph(dfg, lt);
  auto mb = ModuleBinding::bind(dfg, *bench.design.schedule,
                                parse_module_spec(bench.module_spec));
  auto rb = bind_registers_bist_aware(dfg, cg, mb);
  auto dp = build_datapath(dfg, mb, rb);
  auto ctl = Controller::generate(dfg, *bench.design.schedule, rb, dp, lt);

  IdMap<VarId, std::uint32_t> inputs(dfg.num_vars(), 0);
  inputs[*dfg.find_var("a")] = 0xDEADBEEFu;
  inputs[*dfg.find_var("b")] = 0x12345678u;
  inputs[*dfg.find_var("c")] = 0xFFFFFFFFu;
  inputs[*dfg.find_var("e")] = 0x0F0F0F0Fu;
  auto sim = simulate_datapath(dfg, dp, ctl, inputs, w);
  EXPECT_TRUE(sim.ok()) << "width " << w;
}

TEST_P(Widths, PortFaultSimWorksAtEveryWidth) {
  const int w = GetParam();
  const int patterns = w <= 8 ? 200 : 400;
  auto result =
      simulate_module_bist(ModuleProto{{OpKind::Add}}, w, patterns);
  EXPECT_EQ(result.total, 6 * w);
  // A w-bit MISR aliases with probability ~2^-w; at width 4 that is a
  // visible fraction of the 24 faults.
  EXPECT_GT(result.coverage(), w == 4 ? 0.85 : 0.95) << "width " << w;
}

TEST_P(Widths, SelfTestRunsAtEveryWidth) {
  const int w = GetParam();
  if (w > 16) GTEST_SKIP() << "self-test sweep kept to moderate widths";
  auto row = compare_benchmark(make_ex1());
  auto st = run_self_test(row.testable.datapath, row.testable.bist, 200, w);
  EXPECT_GT(st.coverage(), 0.85) << "width " << w;
}

TEST_P(Widths, GateBuildersMatchReference) {
  const int w = GetParam();
  if (w > 16) GTEST_SKIP() << "gate sweep kept to moderate widths";
  for (OpKind kind : {OpKind::Add, OpKind::Mul}) {
    ModuleNetlist m = build_module(kind, w);
    const std::uint32_t mask =
        w == 32 ? 0xFFFFFFFFu : ((std::uint32_t{1} << w) - 1);
    std::uint32_t a = 0x1234567u & mask, b = 0x89ABCDEu & mask;
    for (int t = 0; t < 50; ++t) {
      a = (a * 73 + 11) & mask;
      b = (b * 29 + 5) & mask;
      std::vector<std::uint64_t> ab(static_cast<std::size_t>(w), 0);
      std::vector<std::uint64_t> bb(static_cast<std::size_t>(w), 0);
      for (int i = 0; i < w; ++i) {
        ab[static_cast<std::size_t>(i)] = (a >> i) & 1u;
        bb[static_cast<std::size_t>(i)] = (b >> i) & 1u;
      }
      const auto out = m.eval(ab, bb);
      std::uint32_t y = 0;
      for (int i = 0; i < w; ++i) {
        if (out[static_cast<std::size_t>(i)] & 1u) y |= 1u << i;
      }
      EXPECT_EQ(y, eval_op(kind, a, b, w)) << to_string(kind) << " w" << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Widths, ::testing::Values(4, 8, 16, 32),
                         [](const auto& pinfo) {
                           return "w" + std::to_string(pinfo.param);
                         });

}  // namespace
}  // namespace lbist
