// BIST fault-simulation and test-plan tests: the allocated test resources
// must actually detect port faults, coverage must grow with pattern count,
// and the degenerate one-TPG configuration must demonstrably underperform —
// the experimental backing for the tpg_left != tpg_right embedding rule.

#include <gtest/gtest.h>

#include "bist/fault_sim.hpp"
#include "bist/test_length.hpp"
#include "bist/test_plan.hpp"
#include "core/compare.hpp"
#include "dfg/benchmarks.hpp"

namespace lbist {
namespace {

constexpr int kWidth = 8;

TEST(FaultModel, EnumeratesSixPerBit) {
  auto faults = enumerate_port_faults(kWidth);
  EXPECT_EQ(faults.size(), 6u * kWidth);
}

TEST(FaultSim, AdderReachesFullCoverage) {
  auto result =
      simulate_module_bist(ModuleProto{{OpKind::Add}}, kWidth, 200);
  EXPECT_EQ(result.detected, result.total);
}

TEST(FaultSim, MultiplierReachesHighCoverage) {
  auto result =
      simulate_module_bist(ModuleProto{{OpKind::Mul}}, kWidth, 250);
  // Upper input bits of a truncated multiplier are hard to observe in the
  // kept word; still expect most faults caught.
  EXPECT_GT(result.coverage(), 0.85);
}

TEST(FaultSim, CoverageGrowsWithPatterns) {
  const ModuleProto alu{{OpKind::Add, OpKind::And}};
  const auto few = simulate_module_bist(alu, kWidth, 4);
  const auto many = simulate_module_bist(alu, kWidth, 200);
  EXPECT_LE(few.detected, many.detected);
  EXPECT_GT(many.coverage(), 0.95);
}

TEST(FaultSim, CorrelatedTpgsLoseCoverage) {
  // One LFSR driving both ports: a subtractor always sees a - a = 0, an
  // XOR always 0, comparisons always equal...  Independent TPGs exist for a
  // reason (Section II's "two registers with independent I-paths").
  for (OpKind kind : {OpKind::Sub, OpKind::Xor, OpKind::Lt}) {
    const ModuleProto proto{{kind}};
    const auto indep = simulate_module_bist(proto, kWidth, 250, true);
    const auto corr = simulate_module_bist(proto, kWidth, 250, false);
    EXPECT_LT(corr.detected, indep.detected) << to_string(kind);
  }
}

TEST(FaultSim, EveryKindGetsItsOwnSession) {
  // A fault detectable only through the AND function must still be caught
  // when the module also implements OR.
  const auto alu =
      simulate_module_bist(ModuleProto{{OpKind::And, OpKind::Or}}, kWidth,
                           200);
  EXPECT_GT(alu.coverage(), 0.95);
}

TEST(TestPlan, PaperBenchmarksAreFullyTestable) {
  for (const auto& row : compare_paper_benchmarks()) {
    TestPlan plan =
        build_test_plan(row.testable.datapath, row.testable.bist, 250,
                        kWidth);
    EXPECT_EQ(plan.modules.size(), row.testable.datapath.modules.size())
        << row.name;
    EXPECT_GE(plan.num_sessions, 1) << row.name;
    EXPECT_GT(plan.min_coverage, 0.80) << row.name;
    EXPECT_GT(plan.avg_coverage, 0.90) << row.name;
    EXPECT_EQ(plan.total_clocks, plan.num_sessions * 250) << row.name;
  }
}

TEST(TestPlan, DescribeListsSessionsAndCoverage) {
  auto row = compare_benchmark(make_ex1());
  TestPlan plan =
      build_test_plan(row.testable.datapath, row.testable.bist, 100, kWidth);
  const std::string s = plan.describe(row.testable.datapath);
  EXPECT_NE(s.find("session"), std::string::npos);
  EXPECT_NE(s.find("coverage"), std::string::npos);
  EXPECT_NE(s.find("TPG={"), std::string::npos);
}

TEST(TestPlan, SessionsRespectConflicts) {
  auto row = compare_benchmark(make_ex2());
  TestPlan plan =
      build_test_plan(row.testable.datapath, row.testable.bist, 50, kWidth);
  // Within one session no register is the SA of two modules.
  for (const auto& a : plan.modules) {
    for (const auto& b : plan.modules) {
      if (&a == &b || a.session != b.session) continue;
      if (a.embedding.sa.has_value() && b.embedding.sa.has_value()) {
        EXPECT_NE(*a.embedding.sa, *b.embedding.sa);
      }
    }
  }
}

TEST(TestLength, FindsSmallBudgetForEasyModules) {
  auto tl = find_test_length(ModuleProto{{OpKind::Add}}, 8, 0.99);
  EXPECT_TRUE(tl.target_met);
  EXPECT_LE(tl.patterns, 64);
  EXPECT_GE(tl.coverage.coverage(), 0.99);
}

TEST(TestLength, ReportsUnreachableTargets) {
  // A 1-bit-output comparator cannot reach full port-fault coverage.
  auto tl = find_test_length(ModuleProto{{OpKind::Lt}}, 8, 0.999);
  EXPECT_FALSE(tl.target_met);
  EXPECT_LT(tl.coverage.coverage(), 0.999);
}

TEST(TestLength, DatapathBudgetIsTheMaximum) {
  auto row = compare_benchmark(make_ex1());
  auto budgets = find_test_lengths(row.testable.datapath, 8, 0.95);
  ASSERT_EQ(budgets.per_module.size(),
            row.testable.datapath.modules.size());
  int max_patterns = 0;
  for (const auto& tl : budgets.per_module) {
    max_patterns = std::max(max_patterns, tl.patterns);
  }
  EXPECT_EQ(budgets.recommended_patterns, max_patterns);
  EXPECT_TRUE(budgets.all_targets_met);
}

TEST(TestLength, RejectsBadTargets) {
  EXPECT_THROW((void)find_test_length(ModuleProto{{OpKind::Add}}, 8, 0.0),
               Error);
  EXPECT_THROW((void)find_test_length(ModuleProto{{OpKind::Add}}, 8, 1.5),
               Error);
}

}  // namespace
}  // namespace lbist
