// Unit tests for the RTL library: datapath queries, I-path and embedding
// enumeration, transparency, and the Verilog emitter.

#include <gtest/gtest.h>

#include "binding/bist_aware_binder.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/lifetime.hpp"
#include "graph/conflict.hpp"
#include "interconnect/build_datapath.hpp"
#include "rtl/ipath.hpp"
#include "rtl/controller.hpp"
#include "rtl/simulate.hpp"
#include "rtl/testbench.hpp"
#include "rtl/verilog.hpp"

namespace lbist {
namespace {

/// Hand-built two-module datapath mirroring the paper's Fig. 1/Fig. 3
/// shape: R1,R2 -> M1.L (mux), R3 -> M1.R, M1 -> R4; R1 -> M2.L, R3 -> M2.R,
/// M2 -> R4.
Datapath fig_datapath() {
  Datapath dp;
  dp.name = "fig";
  dp.num_allocated = 4;
  for (int i = 1; i <= 4; ++i) {
    DpRegister r;
    r.name = "R" + std::to_string(i);
    dp.registers.push_back(r);
  }
  DpModule m1;
  m1.name = "M1(+)";
  m1.proto = ModuleProto{{OpKind::Add}};
  m1.left_sources = {0, 1};
  m1.right_sources = {2};
  m1.dest_registers = {3};
  DpModule m2;
  m2.name = "M2(*)";
  m2.proto = ModuleProto{{OpKind::Mul}};
  m2.left_sources = {0};
  m2.right_sources = {2};
  m2.dest_registers = {3};
  dp.modules = {m1, m2};
  dp.registers[3].source_modules = {0, 1};
  return dp;
}

TEST(Datapath, MuxCountOfFigExample) {
  Datapath dp = fig_datapath();
  // M1.L has 2 sources (1 mux), R4 has 2 sources (1 mux).
  EXPECT_EQ(dp.mux_count(), 2);
}

TEST(Datapath, DescribeAndDot) {
  Datapath dp = fig_datapath();
  const std::string d = dp.describe();
  EXPECT_NE(d.find("M1(+)"), std::string::npos);
  EXPECT_NE(d.find("R4"), std::string::npos);
  const std::string dot = dp.to_dot();
  EXPECT_NE(dot.find("\"R1\" -> \"M1(+)\""), std::string::npos);
}

TEST(Datapath, NoSelfAdjacencyInFigExample) {
  EXPECT_TRUE(fig_datapath().self_adjacent_registers().empty());
}

TEST(Datapath, SelfAdjacencyWhenSourceEqualsDest) {
  Datapath dp = fig_datapath();
  dp.modules[0].dest_registers.insert(0);  // M1 writes into its own source
  auto sa = dp.self_adjacent_registers();
  ASSERT_EQ(sa.size(), 1u);
  EXPECT_EQ(sa[0], 0u);
}

TEST(IPath, EnumeratesAllSimplePaths) {
  Datapath dp = fig_datapath();
  auto paths = simple_ipaths(dp);
  // M1: 2 left + 1 right + 1 out; M2: 1 + 1 + 1.
  EXPECT_EQ(paths.size(), 7u);
}

TEST(IPath, SharedHeadAndTailExist) {
  // The Fig. 3 property: R1 heads I-paths into both modules, R4 tails both.
  Datapath dp = fig_datapath();
  auto paths = simple_ipaths(dp);
  int r1_heads = 0, r4_tails = 0;
  for (const auto& p : paths) {
    if (p.reg == 0 && p.port != IPathPort::Out) ++r1_heads;
    if (p.reg == 3 && p.port == IPathPort::Out) ++r4_tails;
  }
  EXPECT_EQ(r1_heads, 2);
  EXPECT_EQ(r4_tails, 2);
}

TEST(Embeddings, FigModuleOne) {
  Datapath dp = fig_datapath();
  auto embs = enumerate_embeddings(dp, 0);
  // tpg_left in {R1,R2}, tpg_right = R3, sa = R4: 2 embeddings, no CBILBO.
  ASSERT_EQ(embs.size(), 2u);
  for (const auto& e : embs) {
    EXPECT_FALSE(e.needs_cbilbo());
    EXPECT_EQ(e.tpg_right, 2u);
    EXPECT_EQ(*e.sa, 3u);
  }
}

TEST(Embeddings, CbilboDetectedWhenSaIsTpg) {
  Datapath dp = fig_datapath();
  dp.modules[1].dest_registers = {0};  // M2 writes into its left source R1
  auto embs = enumerate_embeddings(dp, 1);
  ASSERT_EQ(embs.size(), 1u);
  EXPECT_TRUE(embs[0].needs_cbilbo());
}

TEST(Embeddings, DistinctTpgsRequired) {
  Datapath dp = fig_datapath();
  dp.modules[1].left_sources = {2};  // both ports fed only by R3
  auto embs = enumerate_embeddings(dp, 1);
  EXPECT_TRUE(embs.empty());
}

TEST(Embeddings, ExternalObservationWhenNoDestRegister) {
  Datapath dp = fig_datapath();
  dp.modules[1].dest_registers.clear();
  dp.modules[1].drives_control = true;
  auto embs = enumerate_embeddings(dp, 1);
  ASSERT_EQ(embs.size(), 1u);
  EXPECT_FALSE(embs[0].sa.has_value());
  EXPECT_FALSE(embs[0].needs_cbilbo());
}

TEST(Transparency, IdentityModes) {
  EXPECT_TRUE(has_identity_mode(ModuleProto{{OpKind::Add}}));
  EXPECT_TRUE(has_identity_mode(ModuleProto{{OpKind::Mul}}));
  EXPECT_TRUE(has_identity_mode(ModuleProto{{OpKind::And}}));
  EXPECT_FALSE(has_identity_mode(ModuleProto{{OpKind::Lt}}));
}

TEST(Transparency, PathsGoThroughModules) {
  Datapath dp = fig_datapath();
  auto paths = transparent_ipaths(dp);
  // M1: (R1,R2,R3) -> R4; M2: (R1,R3) -> R4.
  EXPECT_EQ(paths.size(), 5u);
  for (const auto& p : paths) EXPECT_EQ(p.to_reg, 3u);
}

TEST(Verilog, EmitsSyntacticSkeleton) {
  Datapath dp = fig_datapath();
  const std::string v = emit_verilog(dp, 8);
  EXPECT_NE(v.find("module fig"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  // M1's left mux has a select input.
  EXPECT_NE(v.find("sel_M1____l"), std::string::npos);
}

TEST(Verilog, EmitsRealDesign) {
  auto bench = make_ex1();
  auto lt = compute_lifetimes(bench.design.dfg, *bench.design.schedule);
  auto cg = build_conflict_graph(bench.design.dfg, lt);
  auto mb = ModuleBinding::bind(bench.design.dfg, *bench.design.schedule,
                                parse_module_spec(bench.module_spec));
  auto rb = bind_registers_bist_aware(bench.design.dfg, cg, mb);
  auto dp = build_datapath(bench.design.dfg, mb, rb);
  const std::string v = emit_verilog(dp);
  EXPECT_NE(v.find("module ex1"), std::string::npos);
  // One register declaration per physical register.
  for (const auto& r : dp.registers) {
    EXPECT_NE(v.find(r.name + "_q"), std::string::npos);
  }
}

TEST(Testbench, SelfCheckingStructure) {
  auto bench = make_ex1();
  const Dfg& dfg = bench.design.dfg;
  auto lt = compute_lifetimes(dfg, *bench.design.schedule);
  auto cg = build_conflict_graph(dfg, lt);
  auto mb = ModuleBinding::bind(dfg, *bench.design.schedule,
                                parse_module_spec(bench.module_spec));
  auto rb = bind_registers_bist_aware(dfg, cg, mb);
  auto dp = build_datapath(dfg, mb, rb);
  auto ctl = Controller::generate(dfg, *bench.design.schedule, rb, dp, lt);
  IdMap<VarId, std::uint32_t> inputs(dfg.num_vars(), 0);
  inputs[*dfg.find_var("a")] = 3;
  inputs[*dfg.find_var("b")] = 4;
  inputs[*dfg.find_var("c")] = 5;
  inputs[*dfg.find_var("e")] = 2;
  auto sim = simulate_datapath(dfg, dp, ctl, inputs, 8);
  ASSERT_TRUE(sim.ok());
  const std::string tb = emit_testbench(dfg, dp, ctl, inputs, sim, 8);
  EXPECT_NE(tb.find("module ex1_tb;"), std::string::npos);
  EXPECT_NE(tb.find("ex1 dut("), std::string::npos);
  // h = (a+b) * e*(c+a+b) = 7 * 24 = 168 checked at the end.
  EXPECT_NE(tb.find("!== 168"), std::string::npos);
  EXPECT_NE(tb.find("$display(\"PASS\")"), std::string::npos);
  // One control block per word (steps 0..4).
  for (int s = 0; s <= 4; ++s) {
    EXPECT_NE(tb.find("// control step " + std::to_string(s)),
              std::string::npos);
  }
}

TEST(Testbench, DrivesExternalLoads) {
  auto bench = make_ex1();
  const Dfg& dfg = bench.design.dfg;
  auto lt = compute_lifetimes(dfg, *bench.design.schedule);
  auto cg = build_conflict_graph(dfg, lt);
  auto mb = ModuleBinding::bind(dfg, *bench.design.schedule,
                                parse_module_spec(bench.module_spec));
  auto rb = bind_registers_bist_aware(dfg, cg, mb);
  auto dp = build_datapath(dfg, mb, rb);
  auto ctl = Controller::generate(dfg, *bench.design.schedule, rb, dp, lt);
  IdMap<VarId, std::uint32_t> inputs(dfg.num_vars(), 0);
  inputs[*dfg.find_var("a")] = 11;
  inputs[*dfg.find_var("b")] = 22;
  inputs[*dfg.find_var("c")] = 33;
  inputs[*dfg.find_var("e")] = 44;
  auto sim = simulate_datapath(dfg, dp, ctl, inputs, 8);
  const std::string tb = emit_testbench(dfg, dp, ctl, inputs, sim, 8);
  for (const char* lit : {" = 11;", " = 22;", " = 33;", " = 44;"}) {
    EXPECT_NE(tb.find(lit), std::string::npos) << lit;
  }
}

}  // namespace
}  // namespace lbist
