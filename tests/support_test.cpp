// Unit tests for the support library: strong ids, dynamic bitsets, the
// table formatter, the DOT writer and the JSON emitter/parser.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/dot.hpp"
#include "support/json.hpp"
#include "support/dyn_bitset.hpp"
#include "support/ids.hpp"
#include "support/table.hpp"

namespace lbist {
namespace {

TEST(Ids, DefaultIsInvalid) {
  VarId v;
  EXPECT_FALSE(v.valid());
  EXPECT_EQ(v, VarId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  VarId v{7};
  EXPECT_TRUE(v.valid());
  EXPECT_EQ(v.value(), 7);
  EXPECT_EQ(v.index(), 7u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(VarId{1}, VarId{2});
  EXPECT_EQ(VarId{3}, VarId{3});
  EXPECT_NE(VarId{3}, VarId{4});
}

TEST(Ids, DistinctTagTypesAreDistinctTypes) {
  static_assert(!std::is_same_v<VarId, OpId>);
  static_assert(!std::is_same_v<RegId, ModuleId>);
}

TEST(Ids, HashWorksInUnorderedContainers) {
  std::hash<VarId> h;
  EXPECT_EQ(h(VarId{5}), h(VarId{5}));
}

TEST(IdMap, BasicAccess) {
  IdMap<VarId, int> map(3, 42);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map[VarId{0}], 42);
  map[VarId{2}] = 7;
  EXPECT_EQ(map[VarId{2}], 7);
}

TEST(Check, ThrowsOnFailure) {
  EXPECT_THROW(LBIST_CHECK(false, "boom"), Error);
  EXPECT_NO_THROW(LBIST_CHECK(true, "fine"));
}

TEST(Check, MessageContainsContext) {
  try {
    LBIST_CHECK(1 == 2, "custom context");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"),
              std::string::npos);
  }
}

TEST(DynBitset, SetResetTest) {
  DynBitset b(100);
  EXPECT_FALSE(b.test(63));
  b.set(63);
  b.set(64);
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 1u);
}

TEST(DynBitset, Intersects) {
  DynBitset a(70), b(70);
  a.set(69);
  EXPECT_FALSE(a.intersects(b));
  b.set(69);
  EXPECT_TRUE(a.intersects(b));
}

TEST(DynBitset, SubsetOf) {
  DynBitset a(10), b(10);
  a.set(3);
  b.set(3);
  b.set(5);
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  DynBitset empty(10);
  EXPECT_TRUE(empty.subset_of(a));
}

TEST(DynBitset, OrAndAssign) {
  DynBitset a(10), b(10);
  a.set(1);
  b.set(2);
  a |= b;
  EXPECT_TRUE(a.test(1));
  EXPECT_TRUE(a.test(2));
  DynBitset c(10);
  c.set(2);
  a &= c;
  EXPECT_FALSE(a.test(1));
  EXPECT_TRUE(a.test(2));
}

TEST(DynBitset, Members) {
  DynBitset a(80);
  a.set(0);
  a.set(79);
  auto m = a.members();
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0], 0u);
  EXPECT_EQ(m[1], 79u);
}

TEST(DynBitset, AnyAndEquality) {
  DynBitset a(10), b(10);
  EXPECT_FALSE(a.any());
  a.set(4);
  EXPECT_TRUE(a.any());
  EXPECT_FALSE(a == b);
  b.set(4);
  EXPECT_TRUE(a == b);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(TextTable, RejectsWrongWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTable, TitleIsPrinted) {
  TextTable t({"a"});
  t.set_title("TABLE I");
  EXPECT_EQ(t.str().rfind("TABLE I\n", 0), 0u);
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 1), "2.0");
}

TEST(DotWriter, DirectedEdges) {
  DotWriter d("g", true);
  d.add_node("a", {"shape=box"});
  d.add_edge("a", "b");
  const std::string s = d.str();
  EXPECT_NE(s.find("digraph g {"), std::string::npos);
  EXPECT_NE(s.find("\"a\" -> \"b\";"), std::string::npos);
  EXPECT_NE(s.find("[shape=box]"), std::string::npos);
}

TEST(DotWriter, UndirectedEdges) {
  DotWriter d("g", false);
  d.add_edge("a", "b", {"label=\"x\""});
  const std::string s = d.str();
  EXPECT_NE(s.find("graph g {"), std::string::npos);
  EXPECT_NE(s.find("\"a\" -- \"b\""), std::string::npos);
}

TEST(JsonParse, ScalarsAndContainers) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e2").as_number(), -250.0);
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
  const Json arr = Json::parse("[1, 2, [3]]");
  ASSERT_TRUE(arr.is_array());
  EXPECT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr.at(2).at(0).as_int(), 3);
  const Json obj = Json::parse("{\"a\": 1, \"b\": {\"c\": [true]}}");
  ASSERT_TRUE(obj.is_object());
  EXPECT_TRUE(obj.contains("a"));
  EXPECT_FALSE(obj.contains("z"));
  EXPECT_TRUE(obj.at("b").at("c").at(0).as_bool());
  EXPECT_EQ(obj.keys(), (std::vector<std::string>{"a", "b"}));
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse("\"a\\n\\t\\\\\\\"b\\u0041\"").as_string(),
            "a\n\t\\\"bA");
}

TEST(JsonParse, ErrorsCarryLineAndColumn) {
  try {
    (void)Json::parse("{\"a\": 1,\n  \"b\": }");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2, column 8"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("[1, 2"), Error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), Error);
  EXPECT_THROW(Json::parse("12 34"), Error);  // trailing content
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
  EXPECT_THROW(Json::parse("tru"), Error);
}

TEST(JsonParse, RejectsPathologicalNestingWithPositionedError) {
  // 256 levels parse; 257 must be rejected (the parser is recursive
  // descent, and request lines arrive from untrusted sockets).
  const auto nested = [](int depth) {
    return std::string(static_cast<std::size_t>(depth), '[') + "1" +
           std::string(static_cast<std::size_t>(depth), ']');
  };
  EXPECT_NO_THROW(Json::parse(nested(256)));
  try {
    (void)Json::parse(nested(257));
    FAIL() << "expected depth error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nesting deeper than 256"), std::string::npos)
        << what;
    EXPECT_NE(what.find("line 1, column 257"), std::string::npos) << what;
  }
  // Objects count toward the same budget, and a deep bomb must not crash.
  std::string bomb;
  for (int i = 0; i < 100000; ++i) bomb += "{\"a\":[";
  EXPECT_THROW(Json::parse(bomb), Error);
}

TEST(JsonParse, TypeMismatchesThrow) {
  const Json j = Json::parse("{\"a\": 1}");
  EXPECT_THROW((void)j.as_string(), Error);
  EXPECT_THROW((void)j.at("a").as_bool(), Error);
  EXPECT_THROW((void)j.at("nope"), Error);
  EXPECT_THROW((void)j.at(std::size_t{0}), Error);
  EXPECT_THROW((void)Json::parse("1.5").as_int(), Error);
}

TEST(JsonDump, IntegersHaveNoTrailingPointZero) {
  EXPECT_EQ(Json::number(3.0).dump(), "3");
  EXPECT_EQ(Json::number(-17).dump(), "-17");
  EXPECT_EQ(Json::number(0.0).dump(), "0");
}

TEST(JsonDump, RoundTripsAreStable) {
  const char* docs[] = {
      "{\"a\":1,\"b\":[1.5,true,null,\"x\"],\"c\":{\"d\":0.1}}",
      "[0.30000000000000004,1e-30,123456789.123456789]",
  };
  for (const char* doc : docs) {
    const Json once = Json::parse(doc);
    const std::string dumped = once.dump();
    const Json twice = Json::parse(dumped);
    EXPECT_EQ(dumped, twice.dump()) << doc;
    EXPECT_EQ(once.dump_compact(), twice.dump_compact()) << doc;
  }
  // Numbers survive exactly: parse(dump(x)) == x bit-for-bit.
  EXPECT_DOUBLE_EQ(Json::parse(Json::number(0.1).dump()).as_number(), 0.1);
  EXPECT_DOUBLE_EQ(
      Json::parse(Json::number(0.30000000000000004).dump()).as_number(),
      0.30000000000000004);
}

TEST(JsonDump, CompactIsOneLine) {
  const Json j = Json::parse("{\"a\": [1, 2], \"b\": {\"c\": true}}");
  EXPECT_EQ(j.dump_compact(), "{\"a\":[1,2],\"b\":{\"c\":true}}");
}

}  // namespace
}  // namespace lbist
