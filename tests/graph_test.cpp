// Unit tests for the graph library: undirected graphs, chordality, PVES
// construction, elimination cliques, coloring, and conflict-graph building.

#include <gtest/gtest.h>

#include <numeric>

#include "dfg/benchmarks.hpp"
#include "dfg/lifetime.hpp"
#include "graph/bron_kerbosch.hpp"
#include "graph/chordal.hpp"
#include "graph/coloring.hpp"
#include "graph/conflict.hpp"
#include "graph/undirected_graph.hpp"
#include "support/check.hpp"

namespace lbist {
namespace {

UndirectedGraph path4() {
  UndirectedGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  return g;
}

UndirectedGraph cycle4() {
  UndirectedGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  return g;
}

TEST(UndirectedGraph, EdgesAndDegree) {
  UndirectedGraph g = path4();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_TRUE(g.adjacent(1, 0));
  EXPECT_FALSE(g.adjacent(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
  g.add_edge(0, 1);  // idempotent
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(UndirectedGraph, RejectsSelfLoop) {
  UndirectedGraph g(2);
  EXPECT_THROW(g.add_edge(1, 1), Error);
}

TEST(UndirectedGraph, Complement) {
  UndirectedGraph g = path4();
  UndirectedGraph c = g.complement();
  EXPECT_EQ(c.num_edges(), 4u * 3u / 2u - 3u);
  EXPECT_TRUE(c.adjacent(0, 2));
  EXPECT_FALSE(c.adjacent(0, 1));
}

TEST(Chordal, SimplicialDetection) {
  UndirectedGraph g = path4();
  DynBitset removed(4);
  EXPECT_TRUE(is_simplicial(g, 0, removed));   // leaf
  EXPECT_FALSE(is_simplicial(g, 1, removed));  // neighbors 0,2 not adjacent
  removed.set(0);
  EXPECT_TRUE(is_simplicial(g, 1, removed));  // only neighbor 2 remains
}

TEST(Chordal, PathIsChordalCycleIsNot) {
  EXPECT_TRUE(is_chordal(path4()));
  EXPECT_FALSE(is_chordal(cycle4()));
  EXPECT_FALSE(perfect_elimination_order(cycle4()).has_value());
}

TEST(Chordal, ChordedCycleIsChordal) {
  UndirectedGraph g = cycle4();
  g.add_edge(0, 2);
  EXPECT_TRUE(is_chordal(g));
}

TEST(Chordal, PeoRespectsPriority) {
  UndirectedGraph g = path4();
  // Both leaves (0 and 3) are simplicial; priority prefers 3 first.
  std::vector<std::size_t> rank = {3, 2, 1, 0};
  auto order = perfect_elimination_order(g, rank);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->front(), 3u);
}

TEST(Chordal, EliminationCliquesCoverMaximalCliques) {
  // Two triangles sharing an edge: {0,1,2} and {1,2,3}.
  UndirectedGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  auto order = perfect_elimination_order(g);
  ASSERT_TRUE(order.has_value());
  auto cliques = elimination_cliques(g, *order);
  bool saw012 = false, saw123 = false;
  for (const auto& c : cliques) {
    if (c == std::vector<std::size_t>{0, 1, 2}) saw012 = true;
    if (c == std::vector<std::size_t>{1, 2, 3}) saw123 = true;
  }
  EXPECT_TRUE(saw012);
  EXPECT_TRUE(saw123);
}

TEST(Chordal, MaxCliqueThroughVertex) {
  UndirectedGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  auto order = perfect_elimination_order(g);
  ASSERT_TRUE(order.has_value());
  auto mcs = max_clique_through_vertex(g, *order);
  EXPECT_EQ(mcs[0], 3u);
  EXPECT_EQ(mcs[1], 3u);
  EXPECT_EQ(mcs[2], 3u);
  EXPECT_EQ(mcs[3], 2u);
}

TEST(Coloring, GreedyOnReversePeoIsOptimalForChordal) {
  UndirectedGraph g(5);
  // K3 plus pendant vertices.
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  auto peo = perfect_elimination_order(g);
  ASSERT_TRUE(peo.has_value());
  std::vector<std::size_t> order(peo->rbegin(), peo->rend());
  Coloring c = greedy_color(g, order);
  EXPECT_TRUE(is_proper_coloring(g, c));
  EXPECT_EQ(c.num_colors, 3u);
  EXPECT_EQ(chordal_clique_number(g), 3u);
}

TEST(Coloring, ProperColoringDetectsViolation) {
  UndirectedGraph g(2);
  g.add_edge(0, 1);
  Coloring c;
  c.color = {0, 0};
  c.num_colors = 1;
  EXPECT_FALSE(is_proper_coloring(g, c));
}

TEST(ConflictGraph, Ex1IsIntervalAndHasCliqueNumberThree) {
  auto bench = make_ex1();
  auto lt = compute_lifetimes(bench.design.dfg, *bench.design.schedule);
  auto cg = build_conflict_graph(bench.design.dfg, lt);
  EXPECT_EQ(cg.graph.num_vertices(), 8u);
  EXPECT_TRUE(is_chordal(cg.graph));
  EXPECT_EQ(chordal_clique_number(cg.graph), 3u);
}

TEST(ConflictGraph, ExcludesNonAllocatable) {
  auto bench = make_paulin();
  auto lt = compute_lifetimes(bench.design.dfg, *bench.design.schedule);
  auto cg = build_conflict_graph(bench.design.dfg, lt);
  for (VarId v : cg.vars) {
    EXPECT_TRUE(bench.design.dfg.var(v).allocatable());
  }
  // vertex_of maps back consistently.
  for (std::size_t i = 0; i < cg.vars.size(); ++i) {
    EXPECT_EQ(cg.vertex(cg.vars[i]), i);
  }
}

TEST(ConflictGraph, EdgesMatchOverlaps) {
  auto bench = make_ex1();
  const Dfg& dfg = bench.design.dfg;
  auto lt = compute_lifetimes(dfg, *bench.design.schedule);
  auto cg = build_conflict_graph(dfg, lt);
  for (std::size_t a = 0; a < cg.vars.size(); ++a) {
    for (std::size_t b = a + 1; b < cg.vars.size(); ++b) {
      EXPECT_EQ(cg.graph.adjacent(a, b),
                lt[cg.vars[a]].overlaps(lt[cg.vars[b]]))
          << dfg.var(cg.vars[a]).name << " vs " << dfg.var(cg.vars[b]).name;
    }
  }
}

TEST(BronKerbosch, HandComputableGraphs) {
  EXPECT_EQ(max_clique_size(path4()), 2u);
  EXPECT_EQ(max_clique_size(cycle4()), 2u);  // C4: non-chordal, clique 2
  UndirectedGraph k4(4);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) k4.add_edge(a, b);
  }
  EXPECT_EQ(max_clique_size(k4), 4u);
  EXPECT_EQ(max_clique(k4).size(), 4u);
}

TEST(BronKerbosch, AgreesWithChordalMachineryOnIntervalGraphs) {
  for (const auto& bench : paper_benchmarks()) {
    auto lt = compute_lifetimes(bench.design.dfg, *bench.design.schedule);
    auto cg = build_conflict_graph(bench.design.dfg, lt);
    EXPECT_EQ(max_clique_size(cg.graph), chordal_clique_number(cg.graph))
        << bench.name;
  }
}

TEST(BronKerbosch, EmptyAndSingleton) {
  EXPECT_EQ(max_clique_size(UndirectedGraph(0)), 0u);
  EXPECT_EQ(max_clique_size(UndirectedGraph(1)), 1u);
  UndirectedGraph isolated(3);
  EXPECT_EQ(max_clique_size(isolated), 1u);
}

}  // namespace
}  // namespace lbist
