// Tests for the pass manager (src/passes/): pipeline shape, stage-boundary
// snapshot/restore byte-identity, options serialization, module-binding
// restore, incremental re-synthesis reuse accounting, and the build-info /
// pass-cache-key plumbing the checkpoint features sit on.

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "binding/module_binding.hpp"
#include "core/report.hpp"
#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/parse.hpp"
#include "passes/incremental.hpp"
#include "passes/pipeline.hpp"
#include "service/cache.hpp"
#include "support/check.hpp"
#include "support/version.hpp"

namespace lbist {
namespace {

const std::vector<std::string>& pass_names() {
  static const std::vector<std::string> names = {
      "sched", "conflict_graph", "binding", "interconnect", "bist"};
  return names;
}

TEST(Pipeline, StandardHasTheFivePaperPhasesInOrder) {
  const PassPipeline& p = PassPipeline::standard();
  ASSERT_EQ(p.num_passes(), pass_names().size());
  for (std::size_t i = 0; i < p.num_passes(); ++i) {
    EXPECT_EQ(p.passes()[i]->name(), pass_names()[i]);
    EXPECT_EQ(p.index_of(pass_names()[i]), i);
  }
  EXPECT_THROW((void)p.index_of("rtl"), Error);
}

TEST(Pipeline, FacadeMatchesDirectPipelineRun) {
  const Benchmark bench = make_ex1();
  const auto protos = parse_module_spec(bench.module_spec);
  SynthesisOptions opts;
  const SynthesisResult via_facade =
      Synthesizer(opts).run(bench.design.dfg, *bench.design.schedule, protos);
  SynthState state(bench.design.dfg, *bench.design.schedule, protos, opts);
  PassPipeline::standard().run(state);
  EXPECT_EQ(state.completed, PassPipeline::standard().num_passes());
  EXPECT_EQ(state.result.describe(bench.design.dfg),
            via_facade.describe(bench.design.dfg));
}

TEST(Pipeline, BinderNamesRoundTrip) {
  for (BinderKind kind :
       {BinderKind::Traditional, BinderKind::BistAware, BinderKind::Ralloc,
        BinderKind::Syntest, BinderKind::CliquePartition,
        BinderKind::LoopAware}) {
    EXPECT_EQ(binder_kind_from_name(binder_kind_name(kind)), kind);
  }
  EXPECT_THROW((void)binder_kind_from_name("left-edge"), Error);
}

/// Every stage boundary of every binder arm round-trips: snapshot at the
/// boundary, re-parse the dump, restore, finish — text report and JSON
/// report must equal the uninterrupted run byte for byte.
class SnapshotRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotRoundTrip, EveryStageResumesToIdenticalResults) {
  const BinderKind kind = static_cast<BinderKind>(GetParam());
  const Benchmark bench = make_ex1();
  const auto protos = parse_module_spec(bench.module_spec);
  SynthesisOptions opts;
  opts.binder = kind;
  const PassPipeline& pipeline = PassPipeline::standard();

  const SynthesisResult full =
      Synthesizer(opts).run(bench.design.dfg, *bench.design.schedule, protos);
  const std::string want_text = full.describe(bench.design.dfg);
  const std::string want_json = report_json(bench.design.dfg, full).dump();

  for (std::size_t stage = 0; stage <= pipeline.num_passes(); ++stage) {
    SynthState state(bench.design.dfg, *bench.design.schedule, protos, opts);
    pipeline.run(state, stage);
    const Json snap = pipeline.snapshot(state);
    EXPECT_EQ(snap.at("format").as_string(), "lowbist-ir-v1");
    EXPECT_EQ(snap.at("stage").as_string(),
              stage == 0 ? "none" : pass_names()[stage - 1]);
    SynthState resumed = pipeline.restore(Json::parse(snap.dump()));
    EXPECT_EQ(resumed.completed, stage);
    pipeline.run(resumed);
    EXPECT_EQ(resumed.result.describe(resumed.dfg()), want_text)
        << "stage " << stage;
    EXPECT_EQ(report_json(resumed.dfg(), resumed.result).dump(), want_json)
        << "stage " << stage;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Binders, SnapshotRoundTrip,
    ::testing::Range(static_cast<int>(BinderKind::Traditional),
                     static_cast<int>(BinderKind::LoopAware) + 1));

TEST(Snapshot, NonDefaultOptionsSurviveTheRoundTrip) {
  SynthesisOptions opts;
  opts.binder = BinderKind::CliquePartition;
  opts.bist_binder.case_overrides = false;
  opts.bist_binder.avoid_cbilbo = false;
  opts.interconnect.weight_by_sd = !opts.interconnect.weight_by_sd;
  opts.lifetime.hold_outputs_to_end = !opts.lifetime.hold_outputs_to_end;
  opts.area.bit_width = 13;
  opts.area.mul_gates_per_bit2 = 3.25;
  const Json j = options_to_json(opts);
  const SynthesisOptions back = options_from_json(Json::parse(j.dump()));
  EXPECT_EQ(options_to_json(back).dump(), j.dump());
  EXPECT_EQ(back.binder, BinderKind::CliquePartition);
  EXPECT_EQ(back.area.bit_width, 13);
  EXPECT_EQ(back.area.mul_gates_per_bit2, 3.25);
  EXPECT_FALSE(back.bist_binder.case_overrides);
}

TEST(Snapshot, RestoreRejectsMalformedDocuments) {
  const PassPipeline& pipeline = PassPipeline::standard();
  EXPECT_THROW((void)pipeline.restore(Json::parse("{}")), Error);
  EXPECT_THROW(
      (void)pipeline.restore(Json::parse("{\"format\":\"lowbist-ir-v9\"}")),
      Error);

  const Benchmark bench = make_ex1();
  const auto protos = parse_module_spec(bench.module_spec);
  SynthState state(bench.design.dfg, *bench.design.schedule, protos, {});
  pipeline.run(state, pipeline.index_of("binding") + 1);
  const std::string good = pipeline.snapshot(state).dump();
  // Restoring the intact snapshot works; a truncated one must not.
  EXPECT_NO_THROW((void)pipeline.restore(Json::parse(good)));
  EXPECT_THROW((void)pipeline.restore(
                   Json::parse(good.substr(0, good.size() / 2) + "\"}")),
               Error);
}

TEST(Snapshot, WriterRecordIsInformationalOnly) {
  // pass_cache_key must ignore "writer": two builds posting the same IR
  // share a server-side cache entry.
  const Benchmark bench = make_ex1();
  const auto protos = parse_module_spec(bench.module_spec);
  const PassPipeline& pipeline = PassPipeline::standard();
  SynthState state(bench.design.dfg, *bench.design.schedule, protos, {});
  pipeline.run(state, 1);
  Json snap = pipeline.snapshot(state);
  const std::string key = pass_cache_key("conflict_graph", snap);
  snap.set("writer", Json::string("some other build"));
  EXPECT_EQ(pass_cache_key("conflict_graph", snap), key);
  EXPECT_NE(pass_cache_key("binding", snap), key);
}

TEST(ModuleBindingRestore, RejectsInconsistentAssignments) {
  const Benchmark bench = make_ex1();
  const Dfg& dfg = bench.design.dfg;
  const Schedule& sched = *bench.design.schedule;
  const auto protos = parse_module_spec(bench.module_spec);
  const ModuleBinding bound = ModuleBinding::bind(dfg, sched, protos);

  // The recorded assignment restores to the same instance structure.
  IdMap<OpId, ModuleId> module_of(dfg.num_ops());
  for (std::size_t i = 0; i < dfg.num_ops(); ++i) {
    const OpId op{static_cast<OpId::value_type>(i)};
    module_of[op] = bound.module_of(op);
  }
  const ModuleBinding again =
      ModuleBinding::restore(dfg, sched, protos, module_of);
  for (std::size_t m = 0; m < protos.size(); ++m) {
    const ModuleId id{static_cast<ModuleId::value_type>(m)};
    EXPECT_EQ(again.instances(id), bound.instances(id));
  }

  // An out-of-range module is not a valid assignment.
  IdMap<OpId, ModuleId> unknown = module_of;
  unknown[OpId{0}] = ModuleId{static_cast<ModuleId::value_type>(protos.size())};
  EXPECT_THROW((void)ModuleBinding::restore(dfg, sched, protos, unknown),
               Error);

  // Neither is a module that does not support the operation's kind.
  bool found_mismatch = false;
  for (std::size_t i = 0; i < dfg.num_ops() && !found_mismatch; ++i) {
    const OpId op{static_cast<OpId::value_type>(i)};
    for (std::size_t m = 0; m < protos.size(); ++m) {
      if (!protos[m].supports_kind(dfg.op(op).kind)) {
        IdMap<OpId, ModuleId> wrong = module_of;
        wrong[op] = ModuleId{static_cast<ModuleId::value_type>(m)};
        EXPECT_THROW((void)ModuleBinding::restore(dfg, sched, protos, wrong),
                     Error);
        found_mismatch = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_mismatch);
}

TEST(Incremental, ReusesExactlyWhatAnEditCannotReach) {
  const Benchmark bench = make_ex1();
  const auto protos = parse_module_spec(bench.module_spec);
  const std::size_t n = PassPipeline::standard().num_passes();
  SynthesisOptions opts;

  IncrementalSynthesizer inc(opts);
  const SynthesisResult r0 =
      inc.resynthesize(bench.design.dfg, *bench.design.schedule, protos);
  EXPECT_EQ(inc.stats().passes_run, n);
  EXPECT_EQ(
      r0.describe(bench.design.dfg),
      Synthesizer(opts)
          .run(bench.design.dfg, *bench.design.schedule, protos)
          .describe(bench.design.dfg));

  // No edit: every pass reuses.
  (void)inc.resynthesize(bench.design.dfg, *bench.design.schedule, protos);
  EXPECT_EQ(inc.stats().passes_run, n);
  EXPECT_EQ(inc.stats().passes_reused, n);

  // Area-model edit: only the bist pass reads the area model.
  inc.options().area.bit_width = 16;
  SynthesisOptions wide = opts;
  wide.area.bit_width = 16;
  const SynthesisResult r2 =
      inc.resynthesize(bench.design.dfg, *bench.design.schedule, protos);
  EXPECT_EQ(inc.stats().passes_run, n + 1);
  EXPECT_EQ(
      r2.describe(bench.design.dfg),
      Synthesizer(wide)
          .run(bench.design.dfg, *bench.design.schedule, protos)
          .describe(bench.design.dfg));
}

TEST(Incremental, RenameEditRerunsOnlyTheNameBearingPasses) {
  // Renaming a variable changes no id-based structure: sched,
  // conflict_graph and binding reuse; interconnect and bist (whose outputs
  // embed names) re-run.  paulin_loop keeps its constants port-resident, so
  // the renamed input is visible in the data path and reaches both passes.
  const Benchmark bench = make_paulin_loop();
  const auto protos = parse_module_spec(bench.module_spec);
  const std::size_t n = PassPipeline::standard().num_passes();

  std::string text = print_dfg(bench.design.dfg, &*bench.design.schedule);
  // Rename a port-resident input: its name is embedded in the data path,
  // so both name-bearing passes must re-run (an intermediate variable's
  // name would invalidate interconnect only).
  std::string victim;
  for (const Variable& v : bench.design.dfg.vars()) {
    if (v.port_resident) {
      victim = v.name;
      break;
    }
  }
  ASSERT_NE(victim, "");
  std::string renamed_text;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t hit = text.find(victim, pos);
    if (hit == std::string::npos) {
      renamed_text += text.substr(pos);
      break;
    }
    // Whole-token replacement only.
    const bool left_ok =
        hit == 0 ||
        std::isspace(static_cast<unsigned char>(text[hit - 1])) != 0;
    const std::size_t end = hit + victim.size();
    const bool right_ok =
        end == text.size() ||
        std::isspace(static_cast<unsigned char>(text[end])) != 0;
    renamed_text += text.substr(pos, hit - pos);
    renamed_text += (left_ok && right_ok) ? "renamed_var" : victim;
    pos = end;
  }
  const ParsedDfg edited = parse_dfg(renamed_text);
  ASSERT_TRUE(edited.schedule.has_value());

  IncrementalSynthesizer inc{SynthesisOptions{}};
  (void)inc.resynthesize(bench.design.dfg, *bench.design.schedule, protos);
  const SynthesisResult got =
      inc.resynthesize(edited.dfg, *edited.schedule, protos);
  EXPECT_EQ(inc.stats().passes_run, n + 2) << "rename should re-run only "
                                              "interconnect and bist";
  const SynthesisResult want =
      Synthesizer(SynthesisOptions{}).run(edited.dfg, *edited.schedule, protos);
  EXPECT_EQ(got.describe(edited.dfg), want.describe(edited.dfg));
  EXPECT_EQ(report_json(edited.dfg, got).dump(),
            report_json(edited.dfg, want).dump());
}

TEST(Incremental, InvalidateForcesAFullRun) {
  const Benchmark bench = make_ex1();
  const auto protos = parse_module_spec(bench.module_spec);
  const std::size_t n = PassPipeline::standard().num_passes();
  IncrementalSynthesizer inc;
  (void)inc.resynthesize(bench.design.dfg, *bench.design.schedule, protos);
  inc.invalidate();
  (void)inc.resynthesize(bench.design.dfg, *bench.design.schedule, protos);
  EXPECT_EQ(inc.stats().passes_run, 2 * n);
  EXPECT_EQ(inc.stats().passes_reused, 0u);
}

TEST(BuildInfo, IsPopulatedAndSerializable) {
  const BuildInfo& info = build_info();
  EXPECT_FALSE(info.version.empty());
  EXPECT_FALSE(info.git.empty());
  EXPECT_FALSE(info.compiler.empty());
  const Json j = build_info_json();
  for (const char* key :
       {"version", "git", "compiler", "sanitizer", "build_type"}) {
    EXPECT_TRUE(j.contains(key)) << key;
  }
  EXPECT_NE(build_info_string().find("lowbist " + info.version),
            std::string::npos);
}

}  // namespace
}  // namespace lbist
