// Transparency-extended BIST embeddings (I-paths through identity modes).

#include <gtest/gtest.h>

#include "bist/allocator.hpp"
#include "bist/selftest.hpp"
#include "bist/sessions.hpp"
#include "core/compare.hpp"
#include "dfg/benchmarks.hpp"
#include "rtl/ipath.hpp"

namespace lbist {
namespace {

/// M1: R1,R2 -> ... -> R3;  M2: both ports fed only by R3 and R4 where R4
/// also equals nothing else — engineered so M2 profits from a transparent
/// path through M1.
Datapath chain_datapath() {
  Datapath dp;
  dp.name = "chain";
  dp.num_allocated = 5;
  for (int i = 1; i <= 5; ++i) {
    DpRegister r;
    r.name = "R" + std::to_string(i);
    dp.registers.push_back(r);
  }
  DpModule m1;
  m1.name = "M1(+)";
  m1.proto = ModuleProto{{OpKind::Add}};
  m1.left_sources = {0, 1};
  m1.right_sources = {4};
  m1.dest_registers = {2};
  DpModule m2;
  m2.name = "M2(*)";
  m2.proto = ModuleProto{{OpKind::Mul}};
  m2.left_sources = {2};
  m2.right_sources = {3};
  m2.dest_registers = {3};  // self-adjacent on R4: forced CBILBO simply
  dp.modules = {m1, m2};
  dp.registers[2].source_modules = {0};
  dp.registers[3].source_modules = {1};
  return dp;
}

TEST(Transparency, ExtendedSupersetOfSimple) {
  Datapath dp = chain_datapath();
  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    auto simple = enumerate_embeddings(dp, m);
    auto extended = enumerate_embeddings_extended(dp, m);
    EXPECT_GE(extended.size(), simple.size());
    // The simple embeddings appear first, unchanged.
    for (std::size_t i = 0; i < simple.size(); ++i) {
      EXPECT_EQ(extended[i].tpg_left, simple[i].tpg_left);
      EXPECT_EQ(extended[i].tpg_right, simple[i].tpg_right);
      EXPECT_FALSE(extended[i].uses_transparency());
    }
  }
}

TEST(Transparency, ExtendedEmbeddingsRouteThroughIdentityModule) {
  Datapath dp = chain_datapath();
  auto extended = enumerate_embeddings_extended(dp, 1);
  bool found = false;
  for (const auto& e : extended) {
    if (!e.uses_transparency()) continue;
    found = true;
    // Left port of M2 is fed by R3, which M1 writes: the through module
    // must be M1 and the via register R3 (index 2).
    if (e.left_through.has_value()) {
      EXPECT_EQ(*e.left_through, 0u);
      EXPECT_EQ(*e.left_via, 2u);
      EXPECT_TRUE(e.tpg_left == 0 || e.tpg_left == 1 || e.tpg_left == 4);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Transparency, ViaRegisterNeverDoublesAsSaOrPeerTpg) {
  Datapath dp = chain_datapath();
  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    for (const auto& e : enumerate_embeddings_extended(dp, m)) {
      for (auto via : {e.left_via, e.right_via}) {
        if (!via.has_value()) continue;
        EXPECT_NE(*via, e.tpg_left);
        EXPECT_NE(*via, e.tpg_right);
        if (e.sa.has_value()) {
          EXPECT_NE(*via, *e.sa);
        }
      }
    }
  }
}

TEST(Transparency, AllocatorNeverWorseWithTransparency) {
  for (const auto& bench : paper_benchmarks()) {
    auto row = compare_benchmark(bench);
    BistAllocator plain{AreaModel{}};
    BistAllocator extended{AreaModel{}};
    extended.use_transparent_paths = true;
    const double base = plain.solve(row.testable.datapath).extra_area;
    const double with = extended.solve(row.testable.datapath).extra_area;
    EXPECT_LE(with, base + 1e-9) << bench.name;
  }
}

TEST(Transparency, SessionsSeparateWireFromTest) {
  // If a chosen embedding routes through module t, then t and the module
  // under test never share a session.
  auto row = compare_benchmark(make_tseng1());
  BistAllocator alloc{AreaModel{}};
  alloc.use_transparent_paths = true;
  auto sol = alloc.solve(row.testable.datapath);
  auto plan = schedule_test_sessions(row.testable.datapath, sol);
  for (std::size_t m = 0; m < sol.embeddings.size(); ++m) {
    if (!sol.embeddings[m].has_value()) continue;
    for (auto through : {sol.embeddings[m]->left_through,
                         sol.embeddings[m]->right_through}) {
      if (through.has_value()) {
        EXPECT_NE(plan.session_of[m], plan.session_of[*through]);
      }
    }
  }
}

TEST(Transparency, SelfTestExecutesTransparentPlans) {
  auto row = compare_benchmark(make_ex1());
  BistAllocator alloc{AreaModel{}};
  alloc.use_transparent_paths = true;
  auto sol = alloc.solve(row.testable.datapath);
  auto result = run_self_test(row.testable.datapath, sol, 200, 8);
  EXPECT_GT(result.coverage(), 0.9);
}

}  // namespace
}  // namespace lbist
