// Unit tests for the BIST library: area model, role lattice, exact and
// greedy allocation, and test-session scheduling.

#include <gtest/gtest.h>

#include "bist/allocator.hpp"
#include "bist/area_model.hpp"
#include "bist/roles.hpp"
#include "bist/sessions.hpp"

namespace lbist {
namespace {

/// Same synthetic datapath as rtl_test's fig_datapath.
Datapath fig_datapath() {
  Datapath dp;
  dp.name = "fig";
  dp.num_allocated = 4;
  for (int i = 1; i <= 4; ++i) {
    DpRegister r;
    r.name = "R" + std::to_string(i);
    dp.registers.push_back(r);
  }
  DpModule m1;
  m1.name = "M1(+)";
  m1.proto = ModuleProto{{OpKind::Add}};
  m1.left_sources = {0, 1};
  m1.right_sources = {2};
  m1.dest_registers = {3};
  DpModule m2;
  m2.name = "M2(*)";
  m2.proto = ModuleProto{{OpKind::Mul}};
  m2.left_sources = {0};
  m2.right_sources = {2};
  m2.dest_registers = {3};
  dp.modules = {m1, m2};
  dp.registers[3].source_modules = {0, 1};
  return dp;
}

TEST(Roles, FlagsMapToLattice) {
  EXPECT_EQ(RoleFlags{}.role(), BistRole::None);
  EXPECT_EQ((RoleFlags{true, false, false}).role(), BistRole::Tpg);
  EXPECT_EQ((RoleFlags{false, true, false}).role(), BistRole::Sa);
  EXPECT_EQ((RoleFlags{true, true, false}).role(), BistRole::TpgSa);
  EXPECT_EQ((RoleFlags{true, true, true}).role(), BistRole::Cbilbo);
}

TEST(Roles, EncodeDecodeRoundTrip) {
  for (std::uint8_t bits = 0; bits < 8; ++bits) {
    EXPECT_EQ(RoleFlags::decode(bits).encode(), bits);
  }
}

TEST(AreaModel, CbilboIsTwiceRegister) {
  AreaModel m;
  // The paper: CBILBO area ≈ 2x a normal register.
  EXPECT_NEAR(m.register_area() + m.role_extra(BistRole::Cbilbo),
              2.0 * m.register_area(), 1e-9);
}

TEST(AreaModel, RoleCostsAreMonotone) {
  AreaModel m;
  EXPECT_LT(m.role_extra(BistRole::None), m.role_extra(BistRole::Tpg));
  EXPECT_LT(m.role_extra(BistRole::Tpg), m.role_extra(BistRole::TpgSa));
  EXPECT_LT(m.role_extra(BistRole::TpgSa), m.role_extra(BistRole::Cbilbo));
}

TEST(AreaModel, ModuleAreas) {
  AreaModel m;
  const double add = m.module_area(ModuleProto{{OpKind::Add}});
  const double mul = m.module_area(ModuleProto{{OpKind::Mul}});
  EXPECT_GT(mul, add);  // multiplier is quadratic in width
  // ALU costs more than its largest member but less than the sum.
  const double alu = m.module_area(ModuleProto{{OpKind::Add, OpKind::Sub}});
  const double sub = m.module_area(ModuleProto{{OpKind::Sub}});
  EXPECT_GT(alu, sub);
  EXPECT_LT(alu, add + sub);
}

TEST(AreaModel, MuxAreaScalesWithInputs) {
  AreaModel m;
  EXPECT_EQ(m.mux_area(1), 0.0);
  EXPECT_GT(m.mux_area(3), m.mux_area(2));
}

TEST(AreaModel, FunctionalAreaCountsEverything) {
  AreaModel m;
  Datapath dp = fig_datapath();
  const double area = m.functional_area(dp);
  const double regs = 4 * m.register_area();
  const double mods = m.module_area(dp.modules[0].proto) +
                      m.module_area(dp.modules[1].proto);
  const double muxes = 2 * m.mux_area(2);
  EXPECT_NEAR(area, regs + mods + muxes, 1e-9);
}

TEST(Allocator, SharesTpgsAndSaAcrossModules) {
  // Optimal solution for the fig datapath: R1+R3 as shared TPGs, R4 as
  // shared SA — 3 modified registers, no CBILBO (the Fig. 3 argument).
  AreaModel model;
  BistAllocator alloc(model);
  Datapath dp = fig_datapath();
  auto sol = alloc.solve(dp);
  EXPECT_TRUE(sol.untestable_modules.empty());
  auto counts = sol.counts();
  EXPECT_EQ(counts.cbilbo, 0);
  EXPECT_EQ(counts.tpg, 2);
  EXPECT_EQ(counts.sa, 1);
  EXPECT_EQ(counts.modified(), 3);
  EXPECT_EQ(sol.roles[0], BistRole::Tpg);
  EXPECT_EQ(sol.roles[2], BistRole::Tpg);
  EXPECT_EQ(sol.roles[3], BistRole::Sa);
  EXPECT_NEAR(sol.extra_area,
              2 * model.role_extra(BistRole::Tpg) +
                  model.role_extra(BistRole::Sa),
              1e-9);
}

TEST(Allocator, CbilboWhenForced) {
  // Single module whose only destination is also its only left source.
  Datapath dp = fig_datapath();
  dp.modules.resize(1);
  dp.modules[0].left_sources = {0};
  dp.modules[0].right_sources = {2};
  dp.modules[0].dest_registers = {0};
  dp.registers[3].source_modules.clear();
  BistAllocator alloc{AreaModel{}};
  auto sol = alloc.solve(dp);
  auto counts = sol.counts();
  EXPECT_EQ(counts.cbilbo, 1);
  EXPECT_EQ(sol.roles[0], BistRole::Cbilbo);
}

TEST(Allocator, BilboWhenTpgForOneSaForAnother) {
  // M1: R1,R2 -> R3;  M2: R3,R4 -> R5.  R3 is SA for M1 and TPG for M2.
  Datapath dp;
  dp.num_allocated = 5;
  for (int i = 1; i <= 5; ++i) {
    DpRegister r;
    r.name = "R" + std::to_string(i);
    dp.registers.push_back(r);
  }
  DpModule m1;
  m1.proto = ModuleProto{{OpKind::Add}};
  m1.name = "M1";
  m1.left_sources = {0};
  m1.right_sources = {1};
  m1.dest_registers = {2};
  DpModule m2;
  m2.proto = ModuleProto{{OpKind::Add}};
  m2.name = "M2";
  m2.left_sources = {2};
  m2.right_sources = {3};
  m2.dest_registers = {4};
  dp.modules = {m1, m2};
  BistAllocator alloc{AreaModel{}};
  auto sol = alloc.solve(dp);
  EXPECT_EQ(sol.roles[2], BistRole::TpgSa);
  EXPECT_EQ(sol.counts().cbilbo, 0);
}

TEST(Allocator, GreedyMatchesExactOnSmallCases) {
  BistAllocator alloc{AreaModel{}};
  Datapath dp = fig_datapath();
  auto exact = alloc.solve(dp);
  auto greedy = alloc.solve_greedy(dp);
  EXPECT_LE(exact.extra_area, greedy.extra_area + 1e-9);
}

TEST(Allocator, UntestableModuleReported) {
  Datapath dp = fig_datapath();
  dp.modules[1].left_sources = {2};
  dp.modules[1].right_sources = {2};  // single register on both ports
  BistAllocator alloc{AreaModel{}};
  auto sol = alloc.solve(dp);
  ASSERT_EQ(sol.untestable_modules.size(), 1u);
  EXPECT_EQ(sol.untestable_modules[0], 1u);
  EXPECT_FALSE(sol.embeddings[1].has_value());
}

TEST(Allocator, EmbeddingsRecoveredForEachModule) {
  BistAllocator alloc{AreaModel{}};
  Datapath dp = fig_datapath();
  auto sol = alloc.solve(dp);
  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    ASSERT_TRUE(sol.embeddings[m].has_value());
    const auto& e = *sol.embeddings[m];
    EXPECT_TRUE(dp.modules[m].left_sources.count(e.tpg_left) > 0);
    EXPECT_TRUE(dp.modules[m].right_sources.count(e.tpg_right) > 0);
    EXPECT_TRUE(dp.modules[m].dest_registers.count(*e.sa) > 0);
  }
}

TEST(Allocator, DescribeMentionsRoles) {
  BistAllocator alloc{AreaModel{}};
  Datapath dp = fig_datapath();
  auto sol = alloc.solve(dp);
  const std::string s = sol.describe(dp);
  EXPECT_NE(s.find("TPG"), std::string::npos);
  EXPECT_NE(s.find("R4"), std::string::npos);
}

TEST(RoleCounts, ToStringFormat) {
  RoleCounts c;
  c.cbilbo = 1;
  c.tpg = 2;
  EXPECT_EQ(c.to_string(), "1 CBILBO, 2 TPG");
  RoleCounts none;
  EXPECT_EQ(none.to_string(), "none");
}

TEST(Allocator, MinimizeSessionsNeverCostsArea) {
  BistAllocator plain{AreaModel{}};
  BistAllocator tuned{AreaModel{}};
  tuned.minimize_sessions = true;
  Datapath dp = fig_datapath();
  auto a = plain.solve(dp);
  auto b = tuned.solve(dp);
  EXPECT_DOUBLE_EQ(a.extra_area, b.extra_area);
  EXPECT_LE(schedule_test_sessions(dp, b).num_sessions,
            schedule_test_sessions(dp, a).num_sessions);
}

TEST(Sessions, SharedSaForcesTwoSessions) {
  // Both modules use R4 as SA -> they cannot be tested together.
  BistAllocator alloc{AreaModel{}};
  Datapath dp = fig_datapath();
  auto sol = alloc.solve(dp);
  auto plan = schedule_test_sessions(dp, sol);
  EXPECT_EQ(plan.num_sessions, 2);
  EXPECT_NE(plan.session_of[0], plan.session_of[1]);
}

TEST(Sessions, DisjointModulesShareASession) {
  Datapath dp;
  dp.num_allocated = 6;
  for (int i = 1; i <= 6; ++i) {
    DpRegister r;
    r.name = "R" + std::to_string(i);
    dp.registers.push_back(r);
  }
  for (int m = 0; m < 2; ++m) {
    DpModule mod;
    mod.proto = ModuleProto{{OpKind::Add}};
    mod.name = "M" + std::to_string(m + 1);
    mod.left_sources = {static_cast<std::size_t>(3 * m)};
    mod.right_sources = {static_cast<std::size_t>(3 * m + 1)};
    mod.dest_registers = {static_cast<std::size_t>(3 * m + 2)};
    dp.modules.push_back(mod);
  }
  BistAllocator alloc{AreaModel{}};
  auto sol = alloc.solve(dp);
  auto plan = schedule_test_sessions(dp, sol);
  EXPECT_EQ(plan.num_sessions, 1);
}

}  // namespace
}  // namespace lbist
