// Gate-level fault-simulation regression pins (ISSUE 7 satellite).
//
// The gate fault simulator is deterministic: the netlist builders, the
// fault enumeration, the chip seeds and the LFSR/MISR schedule are all
// fixed, so the exact fault counts and detection numbers on the paper
// benchmarks are stable build to build.  These tests freeze them — a
// change here means the simulator, a builder, or the seed policy changed
// behaviour, which must be a conscious decision (update the tables in the
// same commit that changes the model).

#include <gtest/gtest.h>

#include <string>

#include "core/compare.hpp"
#include "dfg/benchmarks.hpp"
#include "gates/gate_fault_sim.hpp"
#include "gates/gate_selftest.hpp"

namespace lbist {
namespace {

constexpr int kWidth = 8;
constexpr int kPatterns = 250;

// ---- Whole-benchmark pins ------------------------------------------------

struct BenchmarkPin {
  const char* name;
  int faults_injected;
  int faults_detected;
};

// run_gate_self_test on the BIST-aware data path, width 8, 250 patterns.
constexpr BenchmarkPin kBenchmarkPins[] = {
    {"ex1", 452, 443},     {"ex2", 1000, 980},  {"Tseng1", 828, 812},
    {"Tseng2", 672, 662},  {"Paulin", 1052, 989},
};

TEST(GateCoverageRegression, PaperBenchmarksMatchPinnedCounts) {
  const auto rows = compare_paper_benchmarks();
  ASSERT_EQ(rows.size(), std::size(kBenchmarkPins));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const BenchmarkPin& pin = kBenchmarkPins[i];
    ASSERT_EQ(row.name, pin.name);
    const GateSelfTestResult result = run_gate_self_test(
        row.testable.datapath, row.testable.bist, kPatterns, kWidth);
    EXPECT_EQ(result.faults_injected, pin.faults_injected) << row.name;
    EXPECT_EQ(result.faults_detected, pin.faults_detected) << row.name;
  }
}

// ---- Per-module-kind pins ------------------------------------------------

struct KindPin {
  OpKind kind;
  int faults_total;
  int faults_detected;
};

// simulate_gate_bist (fixed internal seeds), width 8, 250 patterns.
constexpr KindPin kKindPins[] = {
    {OpKind::Add, 108, 105}, {OpKind::Sub, 124, 123},
    {OpKind::Mul, 344, 336}, {OpKind::Lt, 132, 95},
    {OpKind::And, 48, 48},   {OpKind::Or, 48, 48},
    {OpKind::Xor, 48, 48},
};

TEST(GateCoverageRegression, ModuleKindsMatchPinnedCounts) {
  for (const KindPin& pin : kKindPins) {
    const ModuleNetlist module = build_module(pin.kind, kWidth);
    const CoverageResult result = simulate_gate_bist(module, kPatterns);
    EXPECT_EQ(result.total, pin.faults_total) << symbol(pin.kind);
    EXPECT_EQ(result.detected, pin.faults_detected) << symbol(pin.kind);
  }
}

// ---- Seeded-session consistency -----------------------------------------

// The seeded variant with the chip seeds of registers 0 and 1 must agree
// with its own summary bookkeeping, and every fault it reports as hard
// must genuinely not flip any single pattern the session applied... which
// is what the reseed engine relies on.
TEST(GateCoverageRegression, SeededDetailIsSelfConsistent) {
  const ModuleNetlist module = build_module(OpKind::Add, kWidth);
  const GateBistDetail detail = simulate_gate_bist_seeded(
      module, chip_seed(0, kWidth), chip_seed(1, kWidth), kPatterns);
  EXPECT_EQ(detail.summary.total,
            static_cast<int>(enumerate_gate_faults(module.netlist).size()));
  EXPECT_EQ(static_cast<int>(detail.undetected.size()),
            detail.summary.total - detail.summary.detected);
  // Same seeds, same session -> bit-identical signature and verdicts.
  const GateBistDetail again = simulate_gate_bist_seeded(
      module, chip_seed(0, kWidth), chip_seed(1, kWidth), kPatterns);
  EXPECT_EQ(again.golden_signature, detail.golden_signature);
  EXPECT_EQ(again.undetected.size(), detail.undetected.size());
}

TEST(GateCoverageRegression, FaultConesAreSortedInputSubsets) {
  const ModuleNetlist module = build_module(OpKind::Mul, 4);
  const auto faults = enumerate_gate_faults(module.netlist);
  ASSERT_FALSE(faults.empty());
  for (std::size_t i = 0; i < faults.size(); i += 7) {
    const auto cone = fault_cone_inputs(module.netlist, faults[i].node);
    for (std::size_t k = 1; k < cone.size(); ++k) {
      EXPECT_LT(cone[k - 1], cone[k]);
    }
    for (int input : cone) {
      EXPECT_EQ(module.netlist.node(static_cast<std::size_t>(input)).kind,
                GateKind::Input);
    }
  }
}

}  // namespace
}  // namespace lbist
