// End-to-end tests for the synthesis server: loopback round trips through
// the real TCP stack using the `lowbist client` implementation
// (run_client), byte-identical parity with `lowbist batch`, warm-cache
// accounting via the metrics request, deterministic admission-control
// rejection with a held worker, queue deadlines, and SIGTERM draining.
// The whole file must stay ThreadSanitizer-clean (the CI sanitizer job
// runs it under -DLBIST_SANITIZE=thread).

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "binding/module_spec.hpp"
#include "dfg/benchmarks.hpp"
#include "hybrid/eval.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "passes/pipeline.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "service/batch.hpp"
#include "service/diskcache/diskcache.hpp"
#include "support/json.hpp"

// The live-profiler round trip arms real per-thread SIGPROF timers, which
// TSan's signal interception turns into spurious reports; everything else
// in this file stays TSan-clean.
#if defined(__SANITIZE_THREAD__)
#define LBIST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LBIST_TSAN 1
#endif
#endif

namespace lbist {
namespace {

std::vector<std::string> sorted_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

/// A gate the test holds closed to pin workers inside job execution, so
/// admission overflow and shutdown draining become deterministic instead
/// of racing against synthesis speed.
class Gate {
 public:
  std::function<void()> hold() {
    return [this] {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return open_; });
    };
  }
  void open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// Polls a metrics counter until it reaches `target` (bounded wait).
bool wait_counter(Server& server, const std::string& name,
                  std::uint64_t target) {
  for (int i = 0; i < 4000; ++i) {
    if (server.metrics().counter(name).value() >= target) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

/// Polls a histogram's sample count (signals "a worker dequeued N
/// requests" via queue_ms).
bool wait_histogram_count(Server& server, const std::string& name,
                          std::uint64_t target) {
  for (int i = 0; i < 4000; ++i) {
    if (server.metrics().histogram(name).summarize().count >= target) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

const char* kParityManifest =
    "# parity manifest: duplicates, comments, blanks and broken lines\n"
    "\n"
    "{\"bench\": \"ex1\"}\n"
    "{\"bench\": \"ex1\"}\n"
    "{\"bench\": \"paulin\", \"binder\": \"trad\", \"width\": 8}\n"
    "{\"bench\": \"tseng\", \"modules\": \"1+,3[-*/&|]\"}\n"
    "{oops not json\n"
    "{\"bench\": \"not-a-benchmark\"}\n"
    "{\"bench\": \"ex2\", \"design\": \"two-sources.dfg\"}\n"
    "{\"text\": \"dfg t\\ninput a b\\nop add1 + a b -> c @1\\noutput c\\n\"}\n";

// (a) Sorted responses are byte-identical to `lowbist batch` on the same
// manifest: both sides decode with decode_manifest_line and execute with
// run_entry, so even error text and line numbers must agree.
TEST(ServerEndToEnd, ResponsesMatchBatchByteForByte) {
  const auto entries = parse_manifest(kParityManifest);
  std::ostringstream batch_out;
  BatchOptions batch_opts;
  batch_opts.jobs = 1;
  run_batch(entries, batch_opts, batch_out);

  ServerOptions opts;
  opts.jobs = 2;
  Server server(std::move(opts));
  server.start();
  std::ostringstream server_out;
  const ClientSummary summary =
      run_client("127.0.0.1", server.port(), kParityManifest, server_out);
  server.stop();

  EXPECT_EQ(summary.responses, static_cast<int>(entries.size()));
  EXPECT_EQ(sorted_lines(batch_out.str()), sorted_lines(server_out.str()));
}

// (b) The cache persists across connections: a second identical pass is
// served from the cache, observable through a {"type":"metrics"} request.
TEST(ServerEndToEnd, SecondPassReportsCacheHitsThroughMetricsRequest) {
  const std::string manifest =
      "{\"bench\": \"ex1\"}\n"
      "{\"bench\": \"paulin\", \"binder\": \"trad\"}\n";
  Server server(ServerOptions{});
  server.start();

  std::ostringstream first, second;
  run_client("127.0.0.1", server.port(), manifest, first);
  run_client("127.0.0.1", server.port(), manifest, second);
  EXPECT_EQ(sorted_lines(first.str()), sorted_lines(second.str()));

  std::ostringstream metrics_out;
  const ClientSummary summary = run_client("127.0.0.1", server.port(),
                                           "{\"type\": \"metrics\"}\n",
                                           metrics_out);
  server.stop();

  ASSERT_EQ(summary.responses, 1);
  const Json reply = Json::parse(sorted_lines(metrics_out.str()).at(0));
  EXPECT_EQ(reply.at("type").as_string(), "metrics");
  const Json& cache = reply.at("metrics").at("cache");
  EXPECT_GE(cache.at("hits").as_int(), 2);    // the whole second pass
  EXPECT_EQ(cache.at("misses").as_int(), 2);  // only the cold pass misses
  EXPECT_GT(cache.at("hit_rate").as_number(), 0.0);
  const Json& registry = reply.at("metrics").at("registry");
  EXPECT_EQ(registry.at("counters").at("requests_ok").as_int(), 4);
  EXPECT_GE(registry.at("histograms").at("synth_ms").at("count").as_int(),
            1);
}

// (c) Admission control: with one worker pinned and max_queue=2, exactly
// two of six requests are admitted; the rest get an immediate structured
// "overloaded" rejection — and the server stays healthy afterwards.
TEST(ServerEndToEnd, OverflowYieldsOverloadedErrorsAndServerStaysHealthy) {
  Gate gate;
  ServerOptions opts;
  opts.jobs = 1;
  opts.max_queue = 2;
  opts.test_hold = gate.hold();
  Server server(std::move(opts));
  server.start();

  std::string burst;
  for (int i = 0; i < 6; ++i) burst += "{\"bench\": \"ex1\"}\n";
  std::ostringstream out;
  ClientSummary summary;
  std::thread client([&] {
    summary = run_client("127.0.0.1", server.port(), burst, out);
  });
  // 2 admitted (1 held by the worker, 1 queued), 4 rejected on arrival.
  ASSERT_TRUE(wait_counter(server, "requests_rejected", 4));
  gate.open();
  client.join();

  EXPECT_EQ(summary.responses, 6);
  EXPECT_EQ(summary.ok, 2);
  EXPECT_EQ(summary.errors, 4);
  int overloaded = 0;
  for (const auto& line : sorted_lines(out.str())) {
    const Json j = Json::parse(line);
    if (j.at("status").as_string() == "error") {
      EXPECT_EQ(j.at("error").as_string(), "overloaded");
      EXPECT_TRUE(j.contains("job"));
      ++overloaded;
    }
  }
  EXPECT_EQ(overloaded, 4);

  // Still healthy: a fresh connection gets a health reply and a result.
  std::ostringstream after;
  const ClientSummary healthy =
      run_client("127.0.0.1", server.port(),
                 "{\"type\": \"health\"}\n{\"bench\": \"ex1\"}\n", after);
  EXPECT_EQ(healthy.responses, 2);
  EXPECT_EQ(healthy.ok, 2);
  bool saw_health = false;
  for (const auto& line : sorted_lines(after.str())) {
    const Json j = Json::parse(line);
    if (j.find("type") != nullptr) {
      EXPECT_EQ(j.at("type").as_string(), "health");
      EXPECT_EQ(j.at("status").as_string(), "ok");
      EXPECT_EQ(j.at("max_queue").as_int(), 2);
      EXPECT_EQ(j.at("workers").as_int(), 1);
      saw_health = true;
    }
  }
  EXPECT_TRUE(saw_health);
  server.stop();
  EXPECT_EQ(server.metrics().counter("requests_rejected").value(), 4u);
}

// Per-request deadlines: requests that sat in the queue past the deadline
// are answered with a timeout error when a worker picks them up; the
// worker itself moves on unharmed and the fresh request still executes.
TEST(ServerEndToEnd, ExpiredQueueDeadlineAnswersWithTimeoutError) {
  Gate gate;
  ServerOptions opts;
  opts.jobs = 1;
  opts.deadline_ms = 500;
  opts.test_hold = gate.hold();
  Server server(std::move(opts));
  server.start();

  const std::string manifest =
      "{\"bench\": \"ex1\"}\n"
      "{\"bench\": \"ex1\", \"width\": 8}\n"
      "{\"bench\": \"ex1\", \"width\": 16}\n";
  std::ostringstream out;
  ClientSummary summary;
  std::thread client([&] {
    summary = run_client("127.0.0.1", server.port(), manifest, out);
  });
  // The worker dequeues job 0 (within its deadline) and blocks in the
  // gate; jobs 1 and 2 age in the queue past the 500ms deadline.
  ASSERT_TRUE(wait_histogram_count(server, "queue_ms", 1));
  ASSERT_TRUE(wait_counter(server, "requests_total", 3));
  std::this_thread::sleep_for(std::chrono::milliseconds(900));
  gate.open();
  client.join();

  EXPECT_EQ(summary.responses, 3);
  EXPECT_EQ(summary.ok, 1);
  EXPECT_EQ(summary.errors, 2);
  for (const auto& line : sorted_lines(out.str())) {
    const Json j = Json::parse(line);
    if (j.at("status").as_string() == "error") {
      EXPECT_EQ(j.at("error").as_string(), "deadline exceeded");
    }
  }
  EXPECT_EQ(server.metrics().counter("requests_deadline").value(), 2u);

  // The worker was not poisoned: a fresh request still gets a result.
  std::ostringstream after;
  const ClientSummary fresh =
      run_client("127.0.0.1", server.port(), "{\"bench\": \"ex2\"}\n", after);
  EXPECT_EQ(fresh.ok, 1);
  server.stop();
}

// (d) Graceful shutdown: SIGTERM with in-flight requests stops accepting
// but answers everything already admitted before the server exits.
TEST(ServerEndToEnd, SigtermDrainsInFlightRequestsBeforeExit) {
  Gate gate;
  ServerOptions opts;
  opts.jobs = 1;
  opts.handle_signals = true;
  opts.test_hold = gate.hold();
  Server server(std::move(opts));
  server.start();

  const std::string manifest =
      "{\"bench\": \"ex1\"}\n"
      "{\"bench\": \"ex1\", \"width\": 8}\n"
      "{\"bench\": \"paulin\"}\n";
  std::ostringstream out;
  ClientSummary summary;
  std::thread client([&] {
    summary = run_client("127.0.0.1", server.port(), manifest, out);
  });
  ASSERT_TRUE(wait_counter(server, "requests_total", 3));
  ASSERT_EQ(std::raise(SIGTERM), 0);  // graceful: drain, then exit
  gate.open();
  server.wait();  // returns only after the drain completes
  client.join();

  EXPECT_EQ(summary.responses, 3);
  EXPECT_EQ(summary.ok, 3);
  EXPECT_EQ(summary.errors, 0);
  EXPECT_EQ(server.metrics().counter("requests_ok").value(), 3u);
}

// Framing robustness: an oversized request line is answered with a
// protocol error instead of ballooning server memory.
TEST(ServerEndToEnd, OversizedRequestLineIsRejected) {
  Server server(ServerOptions{});
  server.start();
  std::string huge = "{\"bench\": \"";
  huge.append((1 << 20) + 4096, 'x');
  huge += "\"}\n";
  std::ostringstream out;
  const ClientSummary summary =
      run_client("127.0.0.1", server.port(), huge, out);
  server.stop();
  ASSERT_EQ(summary.responses, 1);
  const Json j = Json::parse(sorted_lines(out.str()).at(0));
  EXPECT_NE(j.at("error").as_string().find("exceeds"), std::string::npos);
}

TEST(ServerEndToEnd, UnknownControlTypeGetsStructuredError) {
  Server server(ServerOptions{});
  server.start();
  std::ostringstream out;
  const ClientSummary summary = run_client(
      "127.0.0.1", server.port(), "{\"type\": \"frobnicate\"}\n", out);
  server.stop();
  ASSERT_EQ(summary.responses, 1);
  const Json j = Json::parse(sorted_lines(out.str()).at(0));
  EXPECT_EQ(j.at("status").as_string(), "error");
  EXPECT_NE(j.at("error").as_string().find("unknown request type"),
            std::string::npos);
}

// Remote single-pass execution: post a binding-stage snapshot, ask the
// server to run the interconnect pass, and compare against running the
// same pass locally.  A repeat of the identical request must be served
// from the cache, and a stage-mismatched request must fail cleanly.
TEST(ServerEndToEnd, PassRequestAdvancesSnapshotAndCaches) {
  const Benchmark bench = make_ex1();
  const auto protos = parse_module_spec(bench.module_spec);
  const PassPipeline& pipeline = PassPipeline::standard();
  const std::size_t index = pipeline.index_of("interconnect");

  SynthState state(bench.design.dfg, *bench.design.schedule, protos,
                   SynthesisOptions{});
  pipeline.run(state, index);
  const Json snap = pipeline.snapshot(state);
  pipeline.run(state, index + 1);
  const std::string want = pipeline.snapshot(state).dump_compact();

  const std::string request =
      Json::object()
          .set("type", Json::string("pass"))
          .set("pass", Json::string("interconnect"))
          .set("snapshot", snap)
          .dump_compact() +
      "\n";

  Server server(ServerOptions{});
  server.start();
  std::ostringstream first, second;
  const ClientSummary s1 =
      run_client("127.0.0.1", server.port(), request, first);
  const ClientSummary s2 =
      run_client("127.0.0.1", server.port(), request, second);
  const SynthesisCache::Stats cache = server.cache().stats();

  // A snapshot that is already past "binding" cannot feed the binding pass.
  const std::string mismatched =
      Json::object()
          .set("type", Json::string("pass"))
          .set("pass", Json::string("binding"))
          .set("snapshot", snap)
          .dump_compact() +
      "\n";
  std::ostringstream bad;
  run_client("127.0.0.1", server.port(), mismatched, bad);
  server.stop();

  ASSERT_EQ(s1.responses, 1);
  ASSERT_EQ(s2.responses, 1);
  const Json r1 = Json::parse(sorted_lines(first.str()).at(0));
  EXPECT_EQ(r1.at("status").as_string(), "ok");
  EXPECT_EQ(r1.at("pass").as_string(), "interconnect");
  EXPECT_EQ(r1.at("snapshot").at("stage").as_string(), "interconnect");
  EXPECT_EQ(r1.at("snapshot").dump_compact(), want);
  // Identical request, identical bytes — the second served from the cache.
  EXPECT_EQ(sorted_lines(first.str()), sorted_lines(second.str()));
  EXPECT_GE(cache.hits, 1u);

  const Json rbad = Json::parse(sorted_lines(bad.str()).at(0));
  EXPECT_EQ(rbad.at("status").as_string(), "error");
  EXPECT_NE(rbad.at("error").as_string().find("is not the predecessor"),
            std::string::npos);
}

// Remote hybrid evaluation: post a snapshot plus a hybrid configuration,
// get the (config, bist_area, result) report back; identical requests are
// served from the pass-snapshot cache and the result matches running
// evaluate_hybrid locally.
TEST(ServerEndToEnd, HybridRequestEvaluatesAndCaches) {
  const Benchmark bench = make_ex1();
  const auto protos = parse_module_spec(bench.module_spec);
  const PassPipeline& pipeline = PassPipeline::standard();
  SynthesisOptions so;
  so.area.bit_width = 8;
  SynthState state(bench.design.dfg, *bench.design.schedule, protos, so);
  pipeline.run(state, pipeline.index_of("binding") + 1);
  const Json snap = pipeline.snapshot(state);

  HybridConfig config;
  config.name = "hybrid+topup";
  config.mode = HybridMode::ReseedTopup;
  config.pr_patterns = 62;
  const Json want = evaluate_hybrid(state, config);

  const std::string request =
      Json::object()
          .set("type", Json::string("hybrid"))
          .set("config", hybrid_config_to_json(config))
          .set("snapshot", snap)
          .dump_compact() +
      "\n";
  Server server(ServerOptions{});
  server.start();
  std::ostringstream first, second, bad;
  run_client("127.0.0.1", server.port(), request, first);
  run_client("127.0.0.1", server.port(), request, second);
  const SynthesisCache::Stats cache = server.cache().stats();
  // A request without a snapshot is a structured error, not a hangup.
  run_client("127.0.0.1", server.port(), "{\"type\": \"hybrid\"}\n", bad);
  server.stop();

  const Json r1 = Json::parse(sorted_lines(first.str()).at(0));
  EXPECT_EQ(r1.at("type").as_string(), "hybrid");
  EXPECT_EQ(r1.at("status").as_string(), "ok");
  EXPECT_EQ(r1.at("hybrid").dump_compact(), want.dump_compact());
  EXPECT_EQ(sorted_lines(first.str()), sorted_lines(second.str()));
  EXPECT_GE(cache.hits, 1u);
  const Json rbad = Json::parse(sorted_lines(bad.str()).at(0));
  EXPECT_EQ(rbad.at("status").as_string(), "error");
  EXPECT_NE(rbad.at("error").as_string().find("snapshot"),
            std::string::npos);
}

// The health reply carries the build record so clients can detect
// server/client version skew before posting snapshots.
TEST(ServerEndToEnd, HealthReplyCarriesBuildInfo) {
  Server server(ServerOptions{});
  server.start();
  std::ostringstream out;
  const ClientSummary summary = run_client(
      "127.0.0.1", server.port(), "{\"type\": \"health\"}\n", out);
  server.stop();
  ASSERT_EQ(summary.responses, 1);
  const Json j = Json::parse(sorted_lines(out.str()).at(0));
  EXPECT_EQ(j.at("type").as_string(), "health");
  const Json& build = j.at("build");
  for (const char* key : {"version", "git", "compiler", "sanitizer"}) {
    EXPECT_TRUE(build.contains(key)) << key;
  }
}

// Multi-shard parity: with several SO_REUSEPORT event loops the kernel
// spreads client connections across shards, but responses must stay
// byte-identical to single-threaded `lowbist batch` on the same manifest.
TEST(ShardedServer, ParityMatchesBatchAcrossShards) {
  const auto entries = parse_manifest(kParityManifest);
  std::ostringstream batch_out;
  BatchOptions batch_opts;
  batch_opts.jobs = 1;
  run_batch(entries, batch_opts, batch_out);

  ServerOptions opts;
  opts.jobs = 2;
  opts.shards = 3;
  Server server(std::move(opts));
  server.start();
  // Several sequential clients so different kernel-picked shards serve
  // traffic; each full pass must match batch byte-for-byte.
  for (int pass = 0; pass < 3; ++pass) {
    std::ostringstream server_out;
    const ClientSummary summary =
        run_client("127.0.0.1", server.port(), kParityManifest, server_out);
    EXPECT_EQ(summary.responses, static_cast<int>(entries.size()));
    EXPECT_EQ(sorted_lines(batch_out.str()), sorted_lines(server_out.str()));
  }
  server.stop();
}

// Restart-rewarm: results written to the persistent cache by one server
// process are served as L2 hits by a fresh server (empty in-memory LRU)
// pointed at the same cache directory.
TEST(ShardedServer, RestartRewarmsFromPersistentCache) {
  char tmpl[] = "/tmp/lowbist-server-cache-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string cache_dir = tmpl;

  const std::string manifest =
      "{\"bench\": \"ex1\"}\n"
      "{\"bench\": \"paulin\", \"binder\": \"trad\"}\n";
  std::string cold_text;
  {
    ServerOptions opts;
    opts.cache_dir = cache_dir;
    Server cold(std::move(opts));
    cold.start();
    std::ostringstream out;
    const ClientSummary summary =
        run_client("127.0.0.1", cold.port(), manifest, out);
    EXPECT_EQ(summary.ok, 2);
    EXPECT_EQ(cold.cache().persistent_hits(), 0u);  // nothing on disk yet
    cold_text = out.str();
    cold.stop();
  }
  {
    ServerOptions opts;
    opts.cache_dir = cache_dir;
    Server warm(std::move(opts));
    warm.start();
    std::ostringstream out;
    const ClientSummary summary =
        run_client("127.0.0.1", warm.port(), manifest, out);
    EXPECT_EQ(summary.ok, 2);
    EXPECT_EQ(sorted_lines(out.str()), sorted_lines(cold_text));
    // Both results came off disk, not from re-running synthesis.
    EXPECT_EQ(warm.cache().persistent_hits(), 2u);
    ASSERT_NE(warm.disk(), nullptr);
    EXPECT_GE(warm.disk()->stats().hits, 2u);
    EXPECT_EQ(warm.disk()->stats().recovered, 2u);

    // The metrics request exposes the persistent tier.
    std::ostringstream metrics_out;
    run_client("127.0.0.1", warm.port(), "{\"type\": \"metrics\"}\n",
               metrics_out);
    const Json reply = Json::parse(sorted_lines(metrics_out.str()).at(0));
    EXPECT_EQ(reply.at("metrics").at("cache").at("persistent_hits").as_int(),
              2);
    EXPECT_GE(reply.at("metrics").at("diskcache").at("hits").as_int(), 2);
    warm.stop();
  }

  for (const char* name : {"cache.dat", "cache.lock", "cache.dat.compact"}) {
    std::remove((cache_dir + "/" + name).c_str());
  }
  ::rmdir(cache_dir.c_str());
}

// With trace_path set, the Chrome trace is exported as part of wait()'s
// graceful drain — a SIGTERM'd server writes the file itself before the
// final shutdown log instead of relying on the launcher surviving it.
TEST(ServerEndToEnd, SigtermDrainExportsTraceFile) {
  char tmpl[] = "/tmp/lowbist-server-trace-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string trace_path = std::string(tmpl) + "/trace.json";

  TraceRecorder trace;
  trace.set_enabled(true);
  ServerOptions opts;
  opts.handle_signals = true;
  opts.trace = &trace;
  opts.trace_path = trace_path;
  Server server(std::move(opts));
  server.start();

  std::ostringstream out;
  const ClientSummary summary =
      run_client("127.0.0.1", server.port(), "{\"bench\": \"ex1\"}\n", out);
  EXPECT_EQ(summary.ok, 1);
  ASSERT_EQ(std::raise(SIGTERM), 0);
  server.wait();  // returns only after the drain — file must exist now

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << "trace not exported during the SIGTERM drain";
  std::ostringstream buf;
  buf << in.rdbuf();
  const Json doc = Json::parse(buf.str());
  const Json& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  bool saw_request_span = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events.at(i).at("name").as_string() == "request") {
      saw_request_span = true;
    }
  }
  EXPECT_TRUE(saw_request_span);

  std::remove(trace_path.c_str());
  ::rmdir(tmpl);
}

// Every shard pre-registers its labeled series at start, so one scrape
// shows all shards — including ones that never took traffic — as one
// metric family per base name.
TEST(ShardedServer, PerShardSeriesAppearInPrometheusScrape) {
  ServerOptions opts;
  opts.jobs = 2;
  opts.shards = 3;
  Server server(std::move(opts));
  server.start();
  std::ostringstream out;
  const ClientSummary summary = run_client(
      "127.0.0.1", server.port(),
      "{\"bench\": \"ex1\"}\n{\"type\": \"prometheus\"}\n", out);
  server.stop();
  EXPECT_EQ(summary.responses, 2);

  std::string body;
  for (const std::string& line : sorted_lines(out.str())) {
    const Json j = Json::parse(line);
    if (const Json* t = j.find("type");
        t != nullptr && t->as_string() == "prometheus") {
      body = j.at("body").as_string();
    }
  }
  ASSERT_FALSE(body.empty());

  for (const char* family :
       {"lowbist_shard_conns", "lowbist_shard_queue_depth",
        "lowbist_shard_requests", "lowbist_shard_dirty_wakeups",
        "lowbist_shard_outbound_hwm_bytes"}) {
    for (const char* shard : {"0", "1", "2"}) {
      const std::string series =
          std::string(family) + "{shard=\"" + shard + "\"}";
      EXPECT_NE(body.find(series), std::string::npos)
          << "missing series: " << series;
    }
    // Grouped into one family: a single TYPE header despite three series.
    const std::string header = std::string("# TYPE ") + family + " ";
    const std::size_t first = body.find(header);
    ASSERT_NE(first, std::string::npos) << family;
    EXPECT_EQ(body.find(header, first + 1), std::string::npos) << family;
  }
  // The profiler's scrape-side gauges ride along on every exposition.
  EXPECT_NE(body.find("lowbist_profiler_running"), std::string::npos);
  EXPECT_NE(body.find("lowbist_profiler_dropped_samples"),
            std::string::npos);
}

// slow_request log lines fire past the threshold and carry the request's
// span id, connecting the log to the trace/profile.
TEST(ServerEndToEnd, SlowRequestsLogWithSpanId) {
  Gate gate;
  std::ostringstream log;
  ServerOptions opts;
  opts.jobs = 1;
  opts.slow_request_ms = 1;
  opts.log = &log;
  opts.test_hold = gate.hold();
  Server server(std::move(opts));
  server.start();

  std::ostringstream out;
  ClientSummary summary;
  std::thread client([&] {
    summary =
        run_client("127.0.0.1", server.port(), "{\"bench\": \"ex1\"}\n", out);
  });
  ASSERT_TRUE(wait_counter(server, "requests_total", 1));
  // The held worker keeps the request in flight well past the 1 ms
  // threshold, making the slow-request path deterministic.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.open();
  client.join();
  server.stop();

  EXPECT_EQ(summary.ok, 1);
  EXPECT_GE(server.metrics().counter("requests_slow").value(), 1u);

  bool found = false;
  std::istringstream lines(log.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"slow_request\"") == std::string::npos) continue;
    const Json j = Json::parse(line);
    EXPECT_EQ(j.at("event").as_string(), "slow_request");
    EXPECT_GE(j.at("span_id").as_int(), 1);
    EXPECT_EQ(j.at("threshold_ms").as_int(), 1);
    EXPECT_GT(j.at("ms").as_number(), 1.0);
    found = true;
  }
  EXPECT_TRUE(found) << log.str();
}

#if !defined(LBIST_TSAN)
// Live profile capture against a running 3-shard server: start arms the
// shard loops and pool workers, dump drains and symbolizes inline, stop
// disarms — all without restarting or disturbing job traffic.
TEST(ShardedServer, ProfileControlRoundTrip) {
  ServerOptions opts;
  opts.jobs = 2;
  opts.shards = 3;
  Server server(std::move(opts));
  server.start();

  auto control = [&](const std::string& line) {
    std::ostringstream out;
    const ClientSummary summary =
        run_client("127.0.0.1", server.port(), line + "\n", out);
    EXPECT_EQ(summary.responses, 1);
    return Json::parse(sorted_lines(out.str()).at(0));
  };

  const Json started =
      control("{\"type\": \"profile\", \"action\": \"start\", \"hz\": 997}");
  EXPECT_EQ(started.at("status").as_string(), "ok");
  EXPECT_TRUE(started.at("running").as_bool());
  EXPECT_EQ(started.at("hz").as_int(), 997);

  // Push some real work through the armed workers (distinct widths dodge
  // the cache) so the dump has something to attribute.
  std::ostringstream jobs_out;
  run_client("127.0.0.1", server.port(),
             "{\"bench\": \"paulin\", \"width\": 5}\n"
             "{\"bench\": \"paulin\", \"width\": 6}\n"
             "{\"bench\": \"tseng\", \"width\": 7}\n",
             jobs_out);

  const Json dumped = control("{\"type\": \"profile\", \"action\": \"dump\"}");
  EXPECT_EQ(dumped.at("status").as_string(), "ok");
  EXPECT_TRUE(dumped.at("running").as_bool());  // dump does not stop it
  const Json& profile = dumped.at("profile");
  EXPECT_EQ(profile.at("format").as_string(), "lowbist-profile-v1");
  EXPECT_EQ(profile.at("hz").as_int(), 997);
  EXPECT_TRUE(profile.at("spans").is_array());
  EXPECT_TRUE(profile.at("top_stacks").is_array());

  const Json bogus =
      control("{\"type\": \"profile\", \"action\": \"bogus\"}");
  EXPECT_EQ(bogus.at("status").as_string(), "error");

  const Json stopped =
      control("{\"type\": \"profile\", \"action\": \"stop\"}");
  EXPECT_EQ(stopped.at("status").as_string(), "ok");
  EXPECT_FALSE(stopped.at("running").as_bool());
  server.stop();
}
#endif  // !LBIST_TSAN

TEST(ClientHelpers, ParseHostPort) {
  std::string host;
  std::uint16_t port = 0;
  parse_host_port("127.0.0.1:8080", &host, &port);
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  parse_host_port("localhost:1", &host, &port);
  EXPECT_EQ(host, "localhost");
  EXPECT_EQ(port, 1);
  EXPECT_THROW(parse_host_port("nocolon", &host, &port), Error);
  EXPECT_THROW(parse_host_port("host:", &host, &port), Error);
  EXPECT_THROW(parse_host_port(":80", &host, &port), Error);
  EXPECT_THROW(parse_host_port("host:99999", &host, &port), Error);
  EXPECT_THROW(parse_host_port("host:abc", &host, &port), Error);
}

}  // namespace
}  // namespace lbist
