// Edge cases of the event-driven transport (src/net): frame reassembly
// across arbitrarily split reads, oversized-line rejection, bounded
// outbound buffering under non-blocking flushes, SO_REUSEPORT listener
// sharing, the EMFILE reserve-fd accept resilience, half-closed peers,
// and server-level slow-reader disconnection.  Like server_test, this
// file must stay ThreadSanitizer-clean.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/listener.hpp"
#include "net/socket.hpp"
#include "server/net.hpp"
#include "server/server.hpp"
#include "support/json.hpp"

namespace lbist {
namespace {

TEST(LineFramer, ReassemblesFramesSplitAcrossSingleByteReads) {
  net::LineFramer framer;
  const std::string wire = "{\"a\":1}\nsecond line\r\n\nlast";
  std::vector<std::string> lines;
  std::string line;
  for (char c : wire) {
    framer.feed(&c, 1);
    while (framer.next(&line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "{\"a\":1}");
  EXPECT_EQ(lines[1], "second line");  // \r stripped
  EXPECT_EQ(lines[2], "");             // blank line is still a frame
  // The unterminated tail only surfaces at end-of-stream.
  EXPECT_FALSE(framer.next(&line));
  ASSERT_TRUE(framer.finish(&line));
  EXPECT_EQ(line, "last");
  EXPECT_FALSE(framer.finish(&line));
}

TEST(LineFramer, PopsManyLinesFromOneChunk) {
  net::LineFramer framer;
  framer.feed(std::string_view("a\nb\nc\n"));
  std::string line;
  std::vector<std::string> lines;
  while (framer.next(&line)) lines.push_back(line);
  EXPECT_EQ(lines, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(framer.buffered(), 0u);
}

TEST(LineFramer, OversizedPartialLineThrows) {
  net::LineFramer framer(/*max_line=*/64);
  const std::string big(100, 'x');  // no newline anywhere
  framer.feed(big);
  std::string line;
  try {
    (void)framer.next(&line);
    FAIL() << "expected oversized-line error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("request line exceeds 64 bytes"),
              std::string::npos);
  }
}

TEST(LineFramer, OversizedCompleteLineThrows) {
  net::LineFramer framer(/*max_line=*/64);
  framer.feed(std::string(100, 'y') + "\n");
  std::string line;
  EXPECT_THROW((void)framer.next(&line), Error);
}

TEST(OutboundBuffer, AppendRefusesToGrowPastTheBound) {
  net::OutboundBuffer out(/*limit=*/8);
  EXPECT_TRUE(out.append("12345"));
  EXPECT_FALSE(out.append("6789"));  // 5 + 4 > 8: refused, not truncated
  EXPECT_EQ(out.pending(), 5u);
  EXPECT_TRUE(out.append("678"));
  EXPECT_EQ(out.pending(), 8u);
}

TEST(OutboundBuffer, FlushDrainsAndReportsPartialOnFullSocket) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::Socket writer(fds[0]);
  net::Socket reader(fds[1]);
  net::set_nonblocking(writer.fd());
  const int small = 4096;
  ::setsockopt(writer.fd(), SOL_SOCKET, SO_SNDBUF, &small, sizeof small);

  net::OutboundBuffer out(/*limit=*/16u << 20);
  EXPECT_TRUE(out.append("hello\n"));
  EXPECT_EQ(out.flush(writer.fd()), net::OutboundBuffer::Flush::Drained);
  char buf[16];
  EXPECT_EQ(::recv(reader.fd(), buf, sizeof buf, 0), 6);

  // Stuff far more than the kernel buffers hold: the flush must stop at
  // Partial instead of blocking or dropping bytes.
  ASSERT_TRUE(out.append(std::string(4u << 20, 'z')));
  ASSERT_EQ(out.flush(writer.fd()), net::OutboundBuffer::Flush::Partial);
  EXPECT_GT(out.pending(), 0u);

  // A reader thread drains while we keep flushing; every byte arrives.
  std::size_t received = 0;
  std::thread drain([&] {
    char chunk[65536];
    while (received < (4u << 20)) {
      const ssize_t n = ::recv(reader.fd(), chunk, sizeof chunk, 0);
      if (n <= 0) break;
      received += static_cast<std::size_t>(n);
    }
  });
  while (out.flush(writer.fd()) != net::OutboundBuffer::Flush::Drained) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  drain.join();
  EXPECT_EQ(received, 4u << 20);
}

TEST(OutboundBuffer, FlushReportsPeerGoneAfterReset) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::Socket writer(fds[0]);
  net::set_nonblocking(writer.fd());
  ::close(fds[1]);

  net::OutboundBuffer out(/*limit=*/1u << 20);
  // The first send may land in the kernel buffer; keep writing until the
  // closed peer surfaces as an error.
  auto status = net::OutboundBuffer::Flush::Drained;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(out.append(std::string(4096, 'q')));
    status = out.flush(writer.fd());
    if (status == net::OutboundBuffer::Flush::PeerGone) break;
  }
  EXPECT_EQ(status, net::OutboundBuffer::Flush::PeerGone);
}

TEST(EventLoop, WakeupFromAnotherThreadInterruptsWait) {
  net::EventLoop loop;
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    loop.wakeup();
  });
  std::vector<net::EventLoop::Ready> ready;
  bool woken = false;
  loop.wait(&ready, /*timeout_ms=*/5000, &woken);
  waker.join();
  EXPECT_TRUE(woken);
  EXPECT_TRUE(ready.empty());
}

TEST(EventLoop, ReportsReadableAndWritableByTag) {
  net::EventLoop loop;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::Socket a(fds[0]);
  net::Socket b(fds[1]);
  loop.add(a.fd(), net::EventLoop::kRead | net::EventLoop::kWrite, 42);
  ASSERT_EQ(::send(b.fd(), "x", 1, 0), 1);

  std::vector<net::EventLoop::Ready> ready;
  bool woken = false;
  ASSERT_GE(loop.wait(&ready, 5000, &woken), 1);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].tag, 42u);
  EXPECT_TRUE(ready[0].readable);
  EXPECT_TRUE(ready[0].writable);  // empty send buffer
  loop.del(a.fd());
}

TEST(ReuseportListener, TwoListenersShareOnePort) {
  net::ReuseportListener first(0);
  net::ReuseportListener second(first.port());
  EXPECT_EQ(first.port(), second.port());

  // A loopback connect lands on exactly one of the two backlogs; poll
  // both through one event loop and accept wherever it arrived.
  net::EventLoop loop;
  loop.add(first.fd(), net::EventLoop::kRead, 1);
  loop.add(second.fd(), net::EventLoop::kRead, 2);
  net::Socket client = net::connect_to("127.0.0.1", first.port());

  std::vector<net::EventLoop::Ready> ready;
  bool woken = false;
  ASSERT_GE(loop.wait(&ready, 5000, &woken), 1);
  net::Socket accepted;
  const auto status = (ready[0].tag == 1 ? first : second).accept_one(
      &accepted);
  EXPECT_EQ(status, net::ReuseportListener::AcceptStatus::Accepted);
  EXPECT_TRUE(accepted.valid());
}

TEST(ReuseportListener, AcceptSurvivesFdExhaustionAndRecovers) {
  net::ReuseportListener listener(0);

  // Lower the descriptor ceiling so exhausting it stays fast, restoring
  // it on exit no matter how the test ends.
  rlimit old{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &old), 0);
  struct Restore {
    rlimit saved;
    ~Restore() { ::setrlimit(RLIMIT_NOFILE, &saved); }
  } restore{old};
  rlimit lowered = old;
  lowered.rlim_cur = 128;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &lowered), 0);

  // The victim connects BEFORE exhaustion (the TCP handshake completes in
  // the backlog without accept), so shedding has something to shed.
  net::Socket victim = net::connect_to("127.0.0.1", listener.port());

  std::vector<int> hog;
  while (true) {
    const int fd = ::open("/dev/null", O_RDONLY);
    if (fd < 0) {
      ASSERT_TRUE(errno == EMFILE || errno == ENFILE);
      break;
    }
    hog.push_back(fd);
  }

  // Descriptor exhaustion must not throw and must not wedge the loop: the
  // pending connection is shed against the reserve fd.
  net::Socket out;
  const auto status = listener.accept_one(&out);
  EXPECT_EQ(status, net::ReuseportListener::AcceptStatus::FdExhausted);
  EXPECT_FALSE(out.valid());

  // The victim sees a deterministic close instead of hanging forever.
  char byte;
  const ssize_t n = ::recv(victim.fd(), &byte, 1, 0);
  EXPECT_LE(n, 0);

  // Backlog is empty again.
  EXPECT_EQ(listener.accept_one(&out),
            net::ReuseportListener::AcceptStatus::WouldBlock);

  for (const int fd : hog) ::close(fd);

  // With descriptors back, the next connection is accepted normally.
  net::Socket second = net::connect_to("127.0.0.1", listener.port());
  auto final_status = net::ReuseportListener::AcceptStatus::WouldBlock;
  for (int i = 0; i < 4000; ++i) {
    final_status = listener.accept_one(&out);
    if (final_status != net::ReuseportListener::AcceptStatus::WouldBlock &&
        final_status != net::ReuseportListener::AcceptStatus::Retry) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(final_status, net::ReuseportListener::AcceptStatus::Accepted);
  EXPECT_TRUE(out.valid());
}

// A half-closed peer (shutdown(SHUT_WR) after sending) must still receive
// every response before the server closes the connection.
TEST(ServerTransport, HalfClosedClientStillReceivesResponses) {
  ServerOptions opts;
  opts.jobs = 1;
  Server server(std::move(opts));
  server.start();

  net::Socket sock = net::connect_to("127.0.0.1", server.port());
  net::send_all(sock.fd(),
                "{\"type\":\"health\"}\n{\"type\":\"metrics\"}\n");
  sock.shutdown_write();

  net::LineReader reader(sock.fd());
  std::vector<std::string> lines;
  std::string line;
  while (reader.read_line(&line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(Json::parse(lines[0]).at("type").as_string(), "health");
  EXPECT_EQ(Json::parse(lines[1]).at("type").as_string(), "metrics");
  server.stop();
}

// A final request without a trailing newline is still served (the framer
// delivers it at end-of-stream).
TEST(ServerTransport, UnterminatedFinalRequestIsServed) {
  ServerOptions opts;
  opts.jobs = 1;
  Server server(std::move(opts));
  server.start();

  net::Socket sock = net::connect_to("127.0.0.1", server.port());
  net::send_all(sock.fd(), "{\"type\":\"health\"}");  // no '\n'
  sock.shutdown_write();

  net::LineReader reader(sock.fd());
  std::string line;
  ASSERT_TRUE(reader.read_line(&line));
  EXPECT_EQ(Json::parse(line).at("status").as_string(), "ok");
  EXPECT_FALSE(reader.read_line(&line));
  server.stop();
}

// A peer that sends requests but never reads responses is disconnected
// once the bounded outbound buffer fills, instead of growing server
// memory without limit.
TEST(ServerTransport, SlowReaderIsDisconnected) {
  ServerOptions opts;
  opts.jobs = 1;
  opts.max_outbound = 4096;  // constructor floor; tiny on purpose
  Server server(std::move(opts));
  server.start();

  net::Socket sock = net::connect_to("127.0.0.1", server.port());
  // Each prometheus response carries the full exposition text (hundreds
  // of bytes); a burst of them overflows 4096 pending bytes quickly while
  // this test never reads a single reply.
  std::string burst;
  for (int i = 0; i < 512; ++i) burst += "{\"type\":\"prometheus\"}\n";
  // The server may drop the connection mid-send; raw send() keeps going
  // until then without dying on SIGPIPE.
  std::size_t sent = 0;
  while (sent < burst.size()) {
    const ssize_t n = ::send(sock.fd(), burst.data() + sent,
                             burst.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }

  bool disconnected = false;
  for (int i = 0; i < 4000; ++i) {
    if (server.metrics().counter("slow_reader_disconnects").value() >= 1) {
      disconnected = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(disconnected);
  server.stop();
}

}  // namespace
}  // namespace lbist
