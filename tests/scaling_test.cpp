// Tests for the scaling-tier machinery: DynBitset word-level operations,
// the scratch Arena, windowed packed adjacency rows, the incremental
// perfect-elimination-order builder, the ΔSD word kernel and the
// incremental Lemma-2 CbilboTracker — each checked against a from-scratch
// recomputation or the dense/reference implementation it replaced.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "binding/cbilbo_check.hpp"
#include "binding/cbilbo_tracker.hpp"
#include "binding/module_spec.hpp"
#include "binding/sharing.hpp"
#include "core/synthesizer.hpp"
#include "dfg/random_dfg.hpp"
#include "graph/chordal.hpp"
#include "graph/undirected_graph.hpp"
#include "support/arena.hpp"
#include "support/dyn_bitset.hpp"

namespace lbist {
namespace {

// ---------------------------------------------------------------------------
// DynBitset

TEST(DynBitsetTest, WordBoundarySizes) {
  for (std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                        std::size_t{65}, std::size_t{128}}) {
    DynBitset b(n);
    EXPECT_EQ(b.size(), n);
    EXPECT_EQ(b.num_words(), (n + 63) / 64);
    EXPECT_FALSE(b.any());
    EXPECT_EQ(b.count(), 0u);

    b.set(0);
    b.set(n - 1);
    EXPECT_TRUE(b.test(0));
    EXPECT_TRUE(b.test(n - 1));
    EXPECT_EQ(b.count(), n == 1 ? 1u : 2u);

    b.reset(n - 1);
    EXPECT_FALSE(b.test(n - 1));
  }
}

TEST(DynBitsetTest, IterateSetBitsAcrossWords) {
  DynBitset b(130);
  const std::vector<std::size_t> want = {0, 1, 63, 64, 65, 127, 128, 129};
  for (std::size_t i : want) b.set(i);
  std::vector<std::size_t> got;
  b.for_each_set_bit([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
  EXPECT_EQ(b.members(), want);
}

TEST(DynBitsetTest, IntersectAndClearOnEmptyAndFull) {
  DynBitset empty(100);
  DynBitset full(100);
  for (std::size_t i = 0; i < 100; ++i) full.set(i);

  EXPECT_FALSE(empty.intersects(full));
  EXPECT_FALSE(full.intersects(empty));
  EXPECT_TRUE(full.intersects(full));
  EXPECT_EQ(empty.intersect_count(full), 0u);
  EXPECT_EQ(full.intersect_count(full), 100u);
  EXPECT_TRUE(empty.subset_of(full));
  EXPECT_FALSE(full.subset_of(empty));

  full.clear();
  EXPECT_FALSE(full.any());
  EXPECT_EQ(full.count(), 0u);
  EXPECT_EQ(full.num_words(), 2u);  // capacity survives clear()

  empty.clear();  // clearing an already-empty set is a no-op
  EXPECT_FALSE(empty.any());
}

TEST(DynBitsetTest, CountAndNotMatchesMergedRecompute) {
  // The ΔSD kernel: |a \ b| must equal |a ∪ b| - |b| for arbitrary masks.
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng() % 200;
    DynBitset a(n);
    DynBitset b(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng() % 3 == 0) a.set(i);
      if (rng() % 3 == 0) b.set(i);
    }
    DynBitset merged = b;
    merged |= a;
    EXPECT_EQ(a.count_and_not(b), merged.count() - b.count());
    EXPECT_EQ(a.intersect_count(b), a.count() + b.count() - merged.count());
  }
}

TEST(DynBitsetTest, WordMutatorsMaskSingleWords) {
  DynBitset b(130);
  b.or_word(0, 0xF0F0);
  b.or_word(2, 0x3);
  EXPECT_EQ(b.word(0), 0xF0F0u);
  EXPECT_EQ(b.word(1), 0u);
  EXPECT_EQ(b.word(2), 0x3u);
  b.and_word(0, 0xFF);
  EXPECT_EQ(b.word(0), 0xF0u);
  EXPECT_EQ(b.count(), 4u + 2u);
}

// ---------------------------------------------------------------------------
// Arena

TEST(ArenaTest, HandsOutZeroedSpansAndReuses) {
  Arena arena(64);  // tiny first chunk to force growth
  auto a = arena.alloc_zeroed<int>(100);
  ASSERT_EQ(a.size(), 100u);
  for (int x : a) EXPECT_EQ(x, 0);
  a[0] = 41;
  a[99] = 42;

  auto b = arena.alloc<std::uint64_t>(8);
  ASSERT_EQ(b.size(), 8u);
  EXPECT_EQ(a[0], 41);  // later allocations never overlap earlier ones
  EXPECT_EQ(a[99], 42);

  const std::size_t cap = arena.capacity_bytes();
  arena.reset();
  // After reset the arena serves from retained memory without growing.
  auto c = arena.alloc_zeroed<int>(100);
  ASSERT_EQ(c.size(), 100u);
  for (int x : c) EXPECT_EQ(x, 0);
  EXPECT_LE(arena.capacity_bytes(), cap);
}

// ---------------------------------------------------------------------------
// Windowed adjacency rows

UndirectedGraph random_dense(std::size_t n, std::mt19937_64& rng,
                             std::vector<std::pair<std::uint32_t,
                                                   std::uint32_t>>* edges) {
  UndirectedGraph dense(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (rng() % 4 == 0) {
        dense.add_edge(a, b);
        edges->emplace_back(static_cast<std::uint32_t>(a),
                            static_cast<std::uint32_t>(b));
      }
    }
  }
  return dense;
}

TEST(UndirectedGraphTest, WindowedBulkConstructionMatchesDense) {
  std::mt19937_64 rng(99);
  for (std::size_t n : {std::size_t{5}, std::size_t{70}, std::size_t{130}}) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    const UndirectedGraph dense = random_dense(n, rng, &edges);
    // Duplicated edges must not double-count.
    auto doubled = edges;
    doubled.insert(doubled.end(), edges.begin(), edges.end());
    const UndirectedGraph packed(n, doubled);

    EXPECT_EQ(packed.num_vertices(), dense.num_vertices());
    EXPECT_EQ(packed.num_edges(), dense.num_edges());
    EXPECT_LE(packed.arena_words(), dense.arena_words());
    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_EQ(packed.degree(v), dense.degree(v));
      EXPECT_EQ(packed.neighbors(v), dense.neighbors(v));
      EXPECT_EQ(packed.row(v).to_bitset(), dense.row(v).to_bitset());
      for (std::size_t u = 0; u < n; ++u) {
        EXPECT_EQ(packed.adjacent(v, u), dense.adjacent(v, u));
      }
    }
  }
}

TEST(UndirectedGraphTest, RowViewOperationsMatchBitsetSemantics) {
  std::mt19937_64 rng(3);
  const std::size_t n = 150;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  const UndirectedGraph dense = random_dense(n, rng, &edges);
  const UndirectedGraph g(n, edges);

  DynBitset mask(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng() % 2 == 0) mask.set(i);
  }
  for (std::size_t v = 0; v < n; ++v) {
    const DynBitset row = g.row(v).to_bitset();
    EXPECT_EQ(g.row(v).count(), row.count());
    EXPECT_EQ(g.row(v).any(), row.any());
    EXPECT_EQ(g.row(v).intersects(mask), row.intersects(mask));
    EXPECT_EQ(g.row(v).subset_of(mask), row.subset_of(mask));

    DynBitset and_got = mask;
    g.row(v).and_into(and_got);
    DynBitset and_want = mask;
    and_want &= row;
    EXPECT_EQ(and_got, and_want);

    DynBitset or_got = mask;
    g.row(v).or_into(or_got);
    DynBitset or_want = mask;
    or_want |= row;
    EXPECT_EQ(or_got, or_want);

    for (std::size_t u = 0; u < n; ++u) {
      EXPECT_EQ(g.row(v).intersects(g.row(u)),
                row.intersects(g.row(u).to_bitset()));
    }
  }
}

TEST(UndirectedGraphTest, IsolatedVerticesInBulkConstruction) {
  // Vertices 0 and 4 have no edges: their windows are empty.
  const UndirectedGraph g(
      5, {{1, 2}, {2, 3}});
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.degree(4), 0u);
  EXPECT_FALSE(g.row(0).any());
  EXPECT_TRUE(g.adjacent(1, 2));
  EXPECT_FALSE(g.adjacent(0, 1));
  EXPECT_EQ(g.num_edges(), 2u);
}

// ---------------------------------------------------------------------------
// Incremental PEO vs the reference greedy scan

/// The O(n^3) reference: repeatedly eliminate the smallest-rank simplicial
/// vertex, rescanning everything each step.
std::optional<std::vector<std::size_t>> reference_peo(
    const UndirectedGraph& g, const std::vector<std::size_t>& rank) {
  const std::size_t n = g.num_vertices();
  DynBitset removed(n);
  std::vector<std::size_t> order;
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (removed.test(v) || !is_simplicial(g, v, removed)) continue;
      if (best == n || (!rank.empty() && rank[v] < rank[best]) ||
          (!rank.empty() && rank[v] == rank[best] && v < best) ||
          (rank.empty() && v < best)) {
        best = v;
      }
    }
    if (best == n) return std::nullopt;
    order.push_back(best);
    removed.set(best);
  }
  return order;
}

/// Random interval graph — guaranteed chordal, the binder's actual shape.
UndirectedGraph random_interval_graph(std::size_t n, std::mt19937_64& rng) {
  std::vector<std::pair<int, int>> iv(n);
  for (auto& [birth, death] : iv) {
    birth = static_cast<int>(rng() % (2 * n));
    death = birth + 1 + static_cast<int>(rng() % 10);
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (iv[a].first < iv[b].second && iv[b].first < iv[a].second) {
        edges.emplace_back(static_cast<std::uint32_t>(a),
                           static_cast<std::uint32_t>(b));
      }
    }
  }
  return UndirectedGraph(n, edges);
}

TEST(ChordalTest, IncrementalPeoMatchesReferenceOnIntervalGraphs) {
  std::mt19937_64 rng(2026);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 5 + rng() % 60;
    const UndirectedGraph g = random_interval_graph(n, rng);

    auto got = perfect_elimination_order(g);
    auto want = reference_peo(g, {});
    ASSERT_TRUE(want.has_value());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, *want);

    // And with a nontrivial priority rank (the binder's PVES path).
    std::vector<std::size_t> rank(n);
    for (std::size_t v = 0; v < n; ++v) rank[v] = rng() % 5;
    auto got_rank = perfect_elimination_order(g, rank);
    auto want_rank = reference_peo(g, rank);
    ASSERT_TRUE(want_rank.has_value());
    ASSERT_TRUE(got_rank.has_value());
    EXPECT_EQ(*got_rank, *want_rank);
  }
}

TEST(ChordalTest, NonChordalGraphHasNoPeo) {
  UndirectedGraph c4(4);  // the 4-cycle: smallest non-chordal graph
  c4.add_edge(0, 1);
  c4.add_edge(1, 2);
  c4.add_edge(2, 3);
  c4.add_edge(3, 0);
  EXPECT_FALSE(perfect_elimination_order(c4).has_value());
  EXPECT_FALSE(is_chordal(c4));
}

// ---------------------------------------------------------------------------
// ΔSD incremental vs recompute on real random DFGs

RandomDfgOptions dfg_opts(std::uint64_t seed) {
  RandomDfgOptions o;
  o.seed = seed;
  o.num_steps = 8;
  o.ops_per_step = 3;
  o.num_inputs = 5;
  o.kinds = {OpKind::Add, OpKind::Mul, OpKind::And, OpKind::Sub};
  return o;
}

TEST(DeltaSdTest, IncrementalDeltasTelescopeToFullRecompute) {
  // The binder accumulates SD(R) as a running sum of count_and_not deltas.
  // For every register of a real binding, that sum must equal the SD of
  // the register's recomputed union mask — in any insertion order.
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    const RandomDfg rd = make_random_dfg(dfg_opts(seed));
    SynthesisOptions so;
    so.binder = BinderKind::BistAware;
    const SynthesisResult res = Synthesizer(so).run(
        rd.dfg, rd.schedule, minimal_module_spec(rd.dfg, rd.schedule));

    const SharingAnalysis sharing(rd.dfg, res.modules);
    for (const auto& members : res.registers.regs) {
      for (int order = 0; order < 2; ++order) {
        std::vector<VarId> vars(members.begin(), members.end());
        if (order == 1) std::reverse(vars.begin(), vars.end());
        DynBitset share = sharing.empty_mask();
        std::size_t sd_incremental = 0;
        for (VarId v : vars) {
          sd_incremental += sharing.mask(v).count_and_not(share);
          share |= sharing.mask(v);
        }
        EXPECT_EQ(sd_incremental,
                  static_cast<std::size_t>(SharingAnalysis::sd_of(share)));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CbilboTracker vs brute-force forced_cbilbos

TEST(CbilboTrackerTest, MatchesBruteForceAtEveryPrefix) {
  for (std::uint64_t seed : {5u, 17u, 29u, 41u}) {
    const RandomDfg rd = make_random_dfg(dfg_opts(seed));
    SynthesisOptions so;
    so.binder = BinderKind::Traditional;
    const SynthesisResult res = Synthesizer(so).run(
        rd.dfg, rd.schedule, minimal_module_spec(rd.dfg, rd.schedule));
    const ModuleBinding& mb = res.modules;
    const RegisterBinding& rb = res.registers;

    CbilboTracker tracker(rd.dfg, mb);
    std::vector<DynBitset> masks;
    for (std::size_t r = 0; r < rb.regs.size(); ++r) {
      EXPECT_EQ(tracker.add_register(), r);
      masks.emplace_back(rd.dfg.num_vars());
    }

    // Replay the final binding variable by variable (VarId order, which
    // interleaves registers like the real binder does) and require the
    // tracker to agree with a from-scratch Lemma-2 evaluation after every
    // single placement — and to have predicted it via delta_if_assigned.
    for (const auto& var : rd.dfg.vars()) {
      const RegId reg = rb.reg_of[var.id];
      if (!reg.valid()) continue;
      const std::size_t r = reg.index();
      const int before = tracker.current();
      const int delta = tracker.delta_if_assigned(var.id, r);
      tracker.assign(var.id, r);
      masks[r].set(var.id.index());
      EXPECT_EQ(tracker.current(), before + delta);
      EXPECT_EQ(static_cast<std::size_t>(tracker.current()),
                forced_cbilbos(mb, masks).size())
          << "seed " << seed << " after placing " << var.name;
    }
  }
}

}  // namespace
}  // namespace lbist
