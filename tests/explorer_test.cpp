// Design-space explorer tests.

#include <gtest/gtest.h>

#include "core/explorer.hpp"
#include "dfg/benchmarks.hpp"

namespace lbist {
namespace {

TEST(Explorer, ModuleSpecSweepProducesOnePointPerSpecAndBinder) {
  auto bench = make_tseng1();
  auto points = explore_module_specs(bench.design.dfg,
                                     *bench.design.schedule,
                                     {"2+,1*,1-,1&,1|,1/", "1+,3[-*/&|]"});
  EXPECT_EQ(points.size(), 4u);  // 2 specs x 2 binders
  for (const auto& p : points) {
    EXPECT_GT(p.functional_area, 0.0);
    EXPECT_GT(p.bist_extra, 0.0);
    EXPECT_EQ(p.latency, 5);
  }
}

TEST(Explorer, ResourceBudgetSweepChangesLatency) {
  Dfg fir = make_fir(8);
  auto points = explore_resource_budgets(
      fir, {{{OpKind::Mul, 1}, {OpKind::Add, 1}},
            {{OpKind::Mul, 4}, {OpKind::Add, 2}}});
  ASSERT_EQ(points.size(), 4u);
  // Fewer units -> longer schedule.
  EXPECT_GT(points[0].latency, points[2].latency);
}

TEST(Explorer, MoreUnitsMoreFunctionalArea) {
  Dfg fir = make_fir(8);
  auto points = explore_resource_budgets(
      fir, {{{OpKind::Mul, 1}, {OpKind::Add, 1}},
            {{OpKind::Mul, 4}, {OpKind::Add, 2}}});
  EXPECT_LT(points[0].functional_area, points[2].functional_area);
}

TEST(Explorer, ParetoFrontIsNonEmptyAndNonDominated) {
  Dfg fir = make_fir(8);
  auto points = explore_resource_budgets(
      fir, {{{OpKind::Mul, 1}, {OpKind::Add, 1}},
            {{OpKind::Mul, 2}, {OpKind::Add, 1}},
            {{OpKind::Mul, 4}, {OpKind::Add, 2}}});
  auto front = pareto_front(points);
  ASSERT_FALSE(front.empty());
  for (std::size_t i : front) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j == i) continue;
      const bool dominates =
          points[j].functional_area <= points[i].functional_area &&
          points[j].bist_extra <= points[i].bist_extra &&
          (points[j].functional_area < points[i].functional_area ||
           points[j].bist_extra < points[i].bist_extra);
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(Explorer, DescribeMarksFront) {
  auto bench = make_ex1();
  auto points = explore_module_specs(bench.design.dfg,
                                     *bench.design.schedule, {"1+,1*"});
  const std::string s = describe_points(points);
  EXPECT_NE(s.find("Pareto front"), std::string::npos);
  EXPECT_NE(s.find("bist-aware"), std::string::npos);
}

TEST(Explorer, BistAwareNeverLosesToTraditionalInSweep) {
  Dfg fir = make_fir(8);
  auto points = explore_resource_budgets(
      fir, {{{OpKind::Mul, 2}, {OpKind::Add, 2}}});
  ASSERT_EQ(points.size(), 2u);
  const auto& trad = points[0];
  const auto& ours = points[1];
  EXPECT_EQ(trad.binder, BinderKind::Traditional);
  EXPECT_EQ(ours.binder, BinderKind::BistAware);
  EXPECT_LE(ours.bist_extra, trad.bist_extra + 1e-9);
}

}  // namespace
}  // namespace lbist
