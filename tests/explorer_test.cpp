// Design-space explorer tests.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/explorer.hpp"
#include "dfg/benchmarks.hpp"

namespace lbist {
namespace {

TEST(Explorer, ModuleSpecSweepProducesOnePointPerSpecAndBinder) {
  auto bench = make_tseng1();
  auto points = explore_module_specs(bench.design.dfg,
                                     *bench.design.schedule,
                                     {"2+,1*,1-,1&,1|,1/", "1+,3[-*/&|]"});
  EXPECT_EQ(points.size(), 4u);  // 2 specs x 2 binders
  for (const auto& p : points) {
    EXPECT_GT(p.functional_area, 0.0);
    EXPECT_GT(p.bist_extra, 0.0);
    EXPECT_EQ(p.latency, 5);
  }
}

TEST(Explorer, ResourceBudgetSweepChangesLatency) {
  Dfg fir = make_fir(8);
  auto points = explore_resource_budgets(
      fir, {{{OpKind::Mul, 1}, {OpKind::Add, 1}},
            {{OpKind::Mul, 4}, {OpKind::Add, 2}}});
  ASSERT_EQ(points.size(), 4u);
  // Fewer units -> longer schedule.
  EXPECT_GT(points[0].latency, points[2].latency);
}

TEST(Explorer, MoreUnitsMoreFunctionalArea) {
  Dfg fir = make_fir(8);
  auto points = explore_resource_budgets(
      fir, {{{OpKind::Mul, 1}, {OpKind::Add, 1}},
            {{OpKind::Mul, 4}, {OpKind::Add, 2}}});
  EXPECT_LT(points[0].functional_area, points[2].functional_area);
}

TEST(Explorer, ParetoFrontIsNonEmptyAndNonDominated) {
  Dfg fir = make_fir(8);
  auto points = explore_resource_budgets(
      fir, {{{OpKind::Mul, 1}, {OpKind::Add, 1}},
            {{OpKind::Mul, 2}, {OpKind::Add, 1}},
            {{OpKind::Mul, 4}, {OpKind::Add, 2}}});
  auto front = pareto_front(points);
  ASSERT_FALSE(front.empty());
  for (std::size_t i : front) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j == i) continue;
      const bool dominates =
          points[j].functional_area <= points[i].functional_area &&
          points[j].bist_extra <= points[i].bist_extra &&
          (points[j].functional_area < points[i].functional_area ||
           points[j].bist_extra < points[i].bist_extra);
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(Explorer, DescribeMarksFront) {
  auto bench = make_ex1();
  auto points = explore_module_specs(bench.design.dfg,
                                     *bench.design.schedule, {"1+,1*"});
  const std::string s = describe_points(points);
  EXPECT_NE(s.find("Pareto front"), std::string::npos);
  EXPECT_NE(s.find("bist-aware"), std::string::npos);
}

TEST(Explorer, BistAwareNeverLosesToTraditionalInSweep) {
  Dfg fir = make_fir(8);
  auto points = explore_resource_budgets(
      fir, {{{OpKind::Mul, 2}, {OpKind::Add, 2}}});
  ASSERT_EQ(points.size(), 2u);
  const auto& trad = points[0];
  const auto& ours = points[1];
  EXPECT_EQ(trad.binder, BinderKind::Traditional);
  EXPECT_EQ(ours.binder, BinderKind::BistAware);
  EXPECT_LE(ours.bist_extra, trad.bist_extra + 1e-9);
}

// The sweep builds one Synthesizer per binder and reuses it across every
// point; a parallel run must still match the serial result point for point.
TEST(Explorer, ParallelSweepMatchesSerial) {
  auto bench = make_tseng1();
  const std::vector<std::string> specs = {"2+,1*,1-,1&,1|,1/", "1+,3[-*/&|]"};
  ExplorerOptions serial;
  ExplorerOptions parallel;
  parallel.jobs = 4;
  const auto a = explore_module_specs(bench.design.dfg,
                                      *bench.design.schedule, specs, serial);
  const auto b = explore_module_specs(bench.design.dfg,
                                      *bench.design.schedule, specs, parallel);
  EXPECT_EQ(describe_points(a), describe_points(b));
}

std::size_t count_lines(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) ++n;
  return n;
}

TEST(Explorer, CheckpointSkipsFinishedPointsAndMatchesUncheckpointedRun) {
  auto bench = make_ex1();
  const std::vector<std::string> specs = {"1+,1*", "2+,1*"};
  const auto baseline = explore_module_specs(bench.design.dfg,
                                             *bench.design.schedule, specs);

  ExplorerOptions opts;
  opts.checkpoint = testing::TempDir() + "/explorer_ckpt_test.jsonl";
  std::remove(opts.checkpoint.c_str());
  const auto first = explore_module_specs(bench.design.dfg,
                                          *bench.design.schedule, specs, opts);
  EXPECT_EQ(describe_points(first), describe_points(baseline));
  // One header line plus one line per (spec, binder) point.
  EXPECT_EQ(count_lines(opts.checkpoint), 1 + specs.size() * 2);

  // The rerun serves every point from the file: no new lines, same output.
  const auto second = explore_module_specs(bench.design.dfg,
                                           *bench.design.schedule, specs, opts);
  EXPECT_EQ(describe_points(second), describe_points(baseline));
  EXPECT_EQ(count_lines(opts.checkpoint), 1 + specs.size() * 2);

  // Corrupt trailing data (a torn write) is skipped, not fatal, and the
  // missing point is re-synthesized.
  {
    std::ofstream out(opts.checkpoint, std::ios::app);
    out << "{\"label\": \"2+,1*\", \"binder\": tor" << "\n";
  }
  const auto third = explore_module_specs(bench.design.dfg,
                                          *bench.design.schedule, specs, opts);
  EXPECT_EQ(describe_points(third), describe_points(baseline));
  std::remove(opts.checkpoint.c_str());
}

}  // namespace
}  // namespace lbist
