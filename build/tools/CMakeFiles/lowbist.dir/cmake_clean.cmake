file(REMOVE_RECURSE
  "CMakeFiles/lowbist.dir/lowbist.cpp.o"
  "CMakeFiles/lowbist.dir/lowbist.cpp.o.d"
  "lowbist"
  "lowbist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowbist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
