# Empty dependencies file for lowbist.
# This may be replaced when dependencies are built.
