# Empty compiler generated dependencies file for diffeq_bist.
# This may be replaced when dependencies are built.
