file(REMOVE_RECURSE
  "CMakeFiles/diffeq_bist.dir/diffeq_bist.cpp.o"
  "CMakeFiles/diffeq_bist.dir/diffeq_bist.cpp.o.d"
  "diffeq_bist"
  "diffeq_bist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffeq_bist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
