# Empty compiler generated dependencies file for custom_dfg.
# This may be replaced when dependencies are built.
