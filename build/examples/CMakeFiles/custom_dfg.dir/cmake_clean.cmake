file(REMOVE_RECURSE
  "CMakeFiles/custom_dfg.dir/custom_dfg.cpp.o"
  "CMakeFiles/custom_dfg.dir/custom_dfg.cpp.o.d"
  "custom_dfg"
  "custom_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
