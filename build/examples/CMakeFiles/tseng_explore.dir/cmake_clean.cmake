file(REMOVE_RECURSE
  "CMakeFiles/tseng_explore.dir/tseng_explore.cpp.o"
  "CMakeFiles/tseng_explore.dir/tseng_explore.cpp.o.d"
  "tseng_explore"
  "tseng_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tseng_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
