# Empty compiler generated dependencies file for tseng_explore.
# This may be replaced when dependencies are built.
