# Empty compiler generated dependencies file for selftest_demo.
# This may be replaced when dependencies are built.
