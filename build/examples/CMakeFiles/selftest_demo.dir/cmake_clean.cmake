file(REMOVE_RECURSE
  "CMakeFiles/selftest_demo.dir/selftest_demo.cpp.o"
  "CMakeFiles/selftest_demo.dir/selftest_demo.cpp.o.d"
  "selftest_demo"
  "selftest_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selftest_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
