# Empty compiler generated dependencies file for bist_signatures.
# This may be replaced when dependencies are built.
