file(REMOVE_RECURSE
  "CMakeFiles/bist_signatures.dir/bist_signatures.cpp.o"
  "CMakeFiles/bist_signatures.dir/bist_signatures.cpp.o.d"
  "bist_signatures"
  "bist_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bist_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
