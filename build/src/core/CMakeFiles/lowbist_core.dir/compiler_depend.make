# Empty compiler generated dependencies file for lowbist_core.
# This may be replaced when dependencies are built.
