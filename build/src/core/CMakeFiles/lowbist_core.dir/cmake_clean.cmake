file(REMOVE_RECURSE
  "CMakeFiles/lowbist_core.dir/annealed_binder.cpp.o"
  "CMakeFiles/lowbist_core.dir/annealed_binder.cpp.o.d"
  "CMakeFiles/lowbist_core.dir/chip.cpp.o"
  "CMakeFiles/lowbist_core.dir/chip.cpp.o.d"
  "CMakeFiles/lowbist_core.dir/compare.cpp.o"
  "CMakeFiles/lowbist_core.dir/compare.cpp.o.d"
  "CMakeFiles/lowbist_core.dir/explorer.cpp.o"
  "CMakeFiles/lowbist_core.dir/explorer.cpp.o.d"
  "CMakeFiles/lowbist_core.dir/report.cpp.o"
  "CMakeFiles/lowbist_core.dir/report.cpp.o.d"
  "CMakeFiles/lowbist_core.dir/synthesizer.cpp.o"
  "CMakeFiles/lowbist_core.dir/synthesizer.cpp.o.d"
  "liblowbist_core.a"
  "liblowbist_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowbist_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
