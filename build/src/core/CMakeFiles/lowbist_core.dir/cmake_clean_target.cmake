file(REMOVE_RECURSE
  "liblowbist_core.a"
)
