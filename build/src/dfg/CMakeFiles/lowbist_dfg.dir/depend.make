# Empty dependencies file for lowbist_dfg.
# This may be replaced when dependencies are built.
