file(REMOVE_RECURSE
  "CMakeFiles/lowbist_dfg.dir/benchmarks.cpp.o"
  "CMakeFiles/lowbist_dfg.dir/benchmarks.cpp.o.d"
  "CMakeFiles/lowbist_dfg.dir/dfg.cpp.o"
  "CMakeFiles/lowbist_dfg.dir/dfg.cpp.o.d"
  "CMakeFiles/lowbist_dfg.dir/lifetime.cpp.o"
  "CMakeFiles/lowbist_dfg.dir/lifetime.cpp.o.d"
  "CMakeFiles/lowbist_dfg.dir/optimize.cpp.o"
  "CMakeFiles/lowbist_dfg.dir/optimize.cpp.o.d"
  "CMakeFiles/lowbist_dfg.dir/parse.cpp.o"
  "CMakeFiles/lowbist_dfg.dir/parse.cpp.o.d"
  "CMakeFiles/lowbist_dfg.dir/random_dfg.cpp.o"
  "CMakeFiles/lowbist_dfg.dir/random_dfg.cpp.o.d"
  "CMakeFiles/lowbist_dfg.dir/schedule.cpp.o"
  "CMakeFiles/lowbist_dfg.dir/schedule.cpp.o.d"
  "liblowbist_dfg.a"
  "liblowbist_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowbist_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
