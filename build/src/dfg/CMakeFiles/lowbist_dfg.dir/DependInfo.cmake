
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfg/benchmarks.cpp" "src/dfg/CMakeFiles/lowbist_dfg.dir/benchmarks.cpp.o" "gcc" "src/dfg/CMakeFiles/lowbist_dfg.dir/benchmarks.cpp.o.d"
  "/root/repo/src/dfg/dfg.cpp" "src/dfg/CMakeFiles/lowbist_dfg.dir/dfg.cpp.o" "gcc" "src/dfg/CMakeFiles/lowbist_dfg.dir/dfg.cpp.o.d"
  "/root/repo/src/dfg/lifetime.cpp" "src/dfg/CMakeFiles/lowbist_dfg.dir/lifetime.cpp.o" "gcc" "src/dfg/CMakeFiles/lowbist_dfg.dir/lifetime.cpp.o.d"
  "/root/repo/src/dfg/optimize.cpp" "src/dfg/CMakeFiles/lowbist_dfg.dir/optimize.cpp.o" "gcc" "src/dfg/CMakeFiles/lowbist_dfg.dir/optimize.cpp.o.d"
  "/root/repo/src/dfg/parse.cpp" "src/dfg/CMakeFiles/lowbist_dfg.dir/parse.cpp.o" "gcc" "src/dfg/CMakeFiles/lowbist_dfg.dir/parse.cpp.o.d"
  "/root/repo/src/dfg/random_dfg.cpp" "src/dfg/CMakeFiles/lowbist_dfg.dir/random_dfg.cpp.o" "gcc" "src/dfg/CMakeFiles/lowbist_dfg.dir/random_dfg.cpp.o.d"
  "/root/repo/src/dfg/schedule.cpp" "src/dfg/CMakeFiles/lowbist_dfg.dir/schedule.cpp.o" "gcc" "src/dfg/CMakeFiles/lowbist_dfg.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lowbist_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
