file(REMOVE_RECURSE
  "liblowbist_dfg.a"
)
