# Empty dependencies file for lowbist_sched.
# This may be replaced when dependencies are built.
