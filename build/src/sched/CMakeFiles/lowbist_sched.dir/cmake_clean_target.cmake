file(REMOVE_RECURSE
  "liblowbist_sched.a"
)
