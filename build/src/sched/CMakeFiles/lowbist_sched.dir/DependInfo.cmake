
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/asap_alap.cpp" "src/sched/CMakeFiles/lowbist_sched.dir/asap_alap.cpp.o" "gcc" "src/sched/CMakeFiles/lowbist_sched.dir/asap_alap.cpp.o.d"
  "/root/repo/src/sched/force_directed.cpp" "src/sched/CMakeFiles/lowbist_sched.dir/force_directed.cpp.o" "gcc" "src/sched/CMakeFiles/lowbist_sched.dir/force_directed.cpp.o.d"
  "/root/repo/src/sched/list_sched.cpp" "src/sched/CMakeFiles/lowbist_sched.dir/list_sched.cpp.o" "gcc" "src/sched/CMakeFiles/lowbist_sched.dir/list_sched.cpp.o.d"
  "/root/repo/src/sched/pressure.cpp" "src/sched/CMakeFiles/lowbist_sched.dir/pressure.cpp.o" "gcc" "src/sched/CMakeFiles/lowbist_sched.dir/pressure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfg/CMakeFiles/lowbist_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lowbist_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
