file(REMOVE_RECURSE
  "CMakeFiles/lowbist_sched.dir/asap_alap.cpp.o"
  "CMakeFiles/lowbist_sched.dir/asap_alap.cpp.o.d"
  "CMakeFiles/lowbist_sched.dir/force_directed.cpp.o"
  "CMakeFiles/lowbist_sched.dir/force_directed.cpp.o.d"
  "CMakeFiles/lowbist_sched.dir/list_sched.cpp.o"
  "CMakeFiles/lowbist_sched.dir/list_sched.cpp.o.d"
  "CMakeFiles/lowbist_sched.dir/pressure.cpp.o"
  "CMakeFiles/lowbist_sched.dir/pressure.cpp.o.d"
  "liblowbist_sched.a"
  "liblowbist_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowbist_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
