
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/binding/bist_aware_binder.cpp" "src/binding/CMakeFiles/lowbist_binding.dir/bist_aware_binder.cpp.o" "gcc" "src/binding/CMakeFiles/lowbist_binding.dir/bist_aware_binder.cpp.o.d"
  "/root/repo/src/binding/cbilbo_check.cpp" "src/binding/CMakeFiles/lowbist_binding.dir/cbilbo_check.cpp.o" "gcc" "src/binding/CMakeFiles/lowbist_binding.dir/cbilbo_check.cpp.o.d"
  "/root/repo/src/binding/clique_binder.cpp" "src/binding/CMakeFiles/lowbist_binding.dir/clique_binder.cpp.o" "gcc" "src/binding/CMakeFiles/lowbist_binding.dir/clique_binder.cpp.o.d"
  "/root/repo/src/binding/enumerate.cpp" "src/binding/CMakeFiles/lowbist_binding.dir/enumerate.cpp.o" "gcc" "src/binding/CMakeFiles/lowbist_binding.dir/enumerate.cpp.o.d"
  "/root/repo/src/binding/loop_binder.cpp" "src/binding/CMakeFiles/lowbist_binding.dir/loop_binder.cpp.o" "gcc" "src/binding/CMakeFiles/lowbist_binding.dir/loop_binder.cpp.o.d"
  "/root/repo/src/binding/module_binding.cpp" "src/binding/CMakeFiles/lowbist_binding.dir/module_binding.cpp.o" "gcc" "src/binding/CMakeFiles/lowbist_binding.dir/module_binding.cpp.o.d"
  "/root/repo/src/binding/module_spec.cpp" "src/binding/CMakeFiles/lowbist_binding.dir/module_spec.cpp.o" "gcc" "src/binding/CMakeFiles/lowbist_binding.dir/module_spec.cpp.o.d"
  "/root/repo/src/binding/register_binding.cpp" "src/binding/CMakeFiles/lowbist_binding.dir/register_binding.cpp.o" "gcc" "src/binding/CMakeFiles/lowbist_binding.dir/register_binding.cpp.o.d"
  "/root/repo/src/binding/sharing.cpp" "src/binding/CMakeFiles/lowbist_binding.dir/sharing.cpp.o" "gcc" "src/binding/CMakeFiles/lowbist_binding.dir/sharing.cpp.o.d"
  "/root/repo/src/binding/traditional_binder.cpp" "src/binding/CMakeFiles/lowbist_binding.dir/traditional_binder.cpp.o" "gcc" "src/binding/CMakeFiles/lowbist_binding.dir/traditional_binder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfg/CMakeFiles/lowbist_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lowbist_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lowbist_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
