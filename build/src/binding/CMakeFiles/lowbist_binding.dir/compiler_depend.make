# Empty compiler generated dependencies file for lowbist_binding.
# This may be replaced when dependencies are built.
