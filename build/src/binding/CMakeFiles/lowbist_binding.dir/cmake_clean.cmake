file(REMOVE_RECURSE
  "CMakeFiles/lowbist_binding.dir/bist_aware_binder.cpp.o"
  "CMakeFiles/lowbist_binding.dir/bist_aware_binder.cpp.o.d"
  "CMakeFiles/lowbist_binding.dir/cbilbo_check.cpp.o"
  "CMakeFiles/lowbist_binding.dir/cbilbo_check.cpp.o.d"
  "CMakeFiles/lowbist_binding.dir/clique_binder.cpp.o"
  "CMakeFiles/lowbist_binding.dir/clique_binder.cpp.o.d"
  "CMakeFiles/lowbist_binding.dir/enumerate.cpp.o"
  "CMakeFiles/lowbist_binding.dir/enumerate.cpp.o.d"
  "CMakeFiles/lowbist_binding.dir/loop_binder.cpp.o"
  "CMakeFiles/lowbist_binding.dir/loop_binder.cpp.o.d"
  "CMakeFiles/lowbist_binding.dir/module_binding.cpp.o"
  "CMakeFiles/lowbist_binding.dir/module_binding.cpp.o.d"
  "CMakeFiles/lowbist_binding.dir/module_spec.cpp.o"
  "CMakeFiles/lowbist_binding.dir/module_spec.cpp.o.d"
  "CMakeFiles/lowbist_binding.dir/register_binding.cpp.o"
  "CMakeFiles/lowbist_binding.dir/register_binding.cpp.o.d"
  "CMakeFiles/lowbist_binding.dir/sharing.cpp.o"
  "CMakeFiles/lowbist_binding.dir/sharing.cpp.o.d"
  "CMakeFiles/lowbist_binding.dir/traditional_binder.cpp.o"
  "CMakeFiles/lowbist_binding.dir/traditional_binder.cpp.o.d"
  "liblowbist_binding.a"
  "liblowbist_binding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowbist_binding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
