file(REMOVE_RECURSE
  "liblowbist_binding.a"
)
