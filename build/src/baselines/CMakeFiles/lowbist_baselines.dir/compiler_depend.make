# Empty compiler generated dependencies file for lowbist_baselines.
# This may be replaced when dependencies are built.
