file(REMOVE_RECURSE
  "liblowbist_baselines.a"
)
