# Empty dependencies file for lowbist_baselines.
# This may be replaced when dependencies are built.
