file(REMOVE_RECURSE
  "CMakeFiles/lowbist_baselines.dir/partial_scan.cpp.o"
  "CMakeFiles/lowbist_baselines.dir/partial_scan.cpp.o.d"
  "CMakeFiles/lowbist_baselines.dir/ralloc.cpp.o"
  "CMakeFiles/lowbist_baselines.dir/ralloc.cpp.o.d"
  "CMakeFiles/lowbist_baselines.dir/syntest.cpp.o"
  "CMakeFiles/lowbist_baselines.dir/syntest.cpp.o.d"
  "liblowbist_baselines.a"
  "liblowbist_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowbist_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
