# Empty dependencies file for lowbist_bist.
# This may be replaced when dependencies are built.
