file(REMOVE_RECURSE
  "CMakeFiles/lowbist_bist.dir/aliasing.cpp.o"
  "CMakeFiles/lowbist_bist.dir/aliasing.cpp.o.d"
  "CMakeFiles/lowbist_bist.dir/allocator.cpp.o"
  "CMakeFiles/lowbist_bist.dir/allocator.cpp.o.d"
  "CMakeFiles/lowbist_bist.dir/area_model.cpp.o"
  "CMakeFiles/lowbist_bist.dir/area_model.cpp.o.d"
  "CMakeFiles/lowbist_bist.dir/fault_sim.cpp.o"
  "CMakeFiles/lowbist_bist.dir/fault_sim.cpp.o.d"
  "CMakeFiles/lowbist_bist.dir/selftest.cpp.o"
  "CMakeFiles/lowbist_bist.dir/selftest.cpp.o.d"
  "CMakeFiles/lowbist_bist.dir/sessions.cpp.o"
  "CMakeFiles/lowbist_bist.dir/sessions.cpp.o.d"
  "CMakeFiles/lowbist_bist.dir/test_length.cpp.o"
  "CMakeFiles/lowbist_bist.dir/test_length.cpp.o.d"
  "CMakeFiles/lowbist_bist.dir/test_plan.cpp.o"
  "CMakeFiles/lowbist_bist.dir/test_plan.cpp.o.d"
  "CMakeFiles/lowbist_bist.dir/verilog_bist.cpp.o"
  "CMakeFiles/lowbist_bist.dir/verilog_bist.cpp.o.d"
  "liblowbist_bist.a"
  "liblowbist_bist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowbist_bist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
