file(REMOVE_RECURSE
  "liblowbist_bist.a"
)
