
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bist/aliasing.cpp" "src/bist/CMakeFiles/lowbist_bist.dir/aliasing.cpp.o" "gcc" "src/bist/CMakeFiles/lowbist_bist.dir/aliasing.cpp.o.d"
  "/root/repo/src/bist/allocator.cpp" "src/bist/CMakeFiles/lowbist_bist.dir/allocator.cpp.o" "gcc" "src/bist/CMakeFiles/lowbist_bist.dir/allocator.cpp.o.d"
  "/root/repo/src/bist/area_model.cpp" "src/bist/CMakeFiles/lowbist_bist.dir/area_model.cpp.o" "gcc" "src/bist/CMakeFiles/lowbist_bist.dir/area_model.cpp.o.d"
  "/root/repo/src/bist/fault_sim.cpp" "src/bist/CMakeFiles/lowbist_bist.dir/fault_sim.cpp.o" "gcc" "src/bist/CMakeFiles/lowbist_bist.dir/fault_sim.cpp.o.d"
  "/root/repo/src/bist/selftest.cpp" "src/bist/CMakeFiles/lowbist_bist.dir/selftest.cpp.o" "gcc" "src/bist/CMakeFiles/lowbist_bist.dir/selftest.cpp.o.d"
  "/root/repo/src/bist/sessions.cpp" "src/bist/CMakeFiles/lowbist_bist.dir/sessions.cpp.o" "gcc" "src/bist/CMakeFiles/lowbist_bist.dir/sessions.cpp.o.d"
  "/root/repo/src/bist/test_length.cpp" "src/bist/CMakeFiles/lowbist_bist.dir/test_length.cpp.o" "gcc" "src/bist/CMakeFiles/lowbist_bist.dir/test_length.cpp.o.d"
  "/root/repo/src/bist/test_plan.cpp" "src/bist/CMakeFiles/lowbist_bist.dir/test_plan.cpp.o" "gcc" "src/bist/CMakeFiles/lowbist_bist.dir/test_plan.cpp.o.d"
  "/root/repo/src/bist/verilog_bist.cpp" "src/bist/CMakeFiles/lowbist_bist.dir/verilog_bist.cpp.o" "gcc" "src/bist/CMakeFiles/lowbist_bist.dir/verilog_bist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/lowbist_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/binding/CMakeFiles/lowbist_binding.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lowbist_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/lowbist_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lowbist_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
