
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/controller.cpp" "src/rtl/CMakeFiles/lowbist_rtl.dir/controller.cpp.o" "gcc" "src/rtl/CMakeFiles/lowbist_rtl.dir/controller.cpp.o.d"
  "/root/repo/src/rtl/datapath.cpp" "src/rtl/CMakeFiles/lowbist_rtl.dir/datapath.cpp.o" "gcc" "src/rtl/CMakeFiles/lowbist_rtl.dir/datapath.cpp.o.d"
  "/root/repo/src/rtl/ipath.cpp" "src/rtl/CMakeFiles/lowbist_rtl.dir/ipath.cpp.o" "gcc" "src/rtl/CMakeFiles/lowbist_rtl.dir/ipath.cpp.o.d"
  "/root/repo/src/rtl/simulate.cpp" "src/rtl/CMakeFiles/lowbist_rtl.dir/simulate.cpp.o" "gcc" "src/rtl/CMakeFiles/lowbist_rtl.dir/simulate.cpp.o.d"
  "/root/repo/src/rtl/testbench.cpp" "src/rtl/CMakeFiles/lowbist_rtl.dir/testbench.cpp.o" "gcc" "src/rtl/CMakeFiles/lowbist_rtl.dir/testbench.cpp.o.d"
  "/root/repo/src/rtl/vcd.cpp" "src/rtl/CMakeFiles/lowbist_rtl.dir/vcd.cpp.o" "gcc" "src/rtl/CMakeFiles/lowbist_rtl.dir/vcd.cpp.o.d"
  "/root/repo/src/rtl/verilog.cpp" "src/rtl/CMakeFiles/lowbist_rtl.dir/verilog.cpp.o" "gcc" "src/rtl/CMakeFiles/lowbist_rtl.dir/verilog.cpp.o.d"
  "/root/repo/src/rtl/verilog_controller.cpp" "src/rtl/CMakeFiles/lowbist_rtl.dir/verilog_controller.cpp.o" "gcc" "src/rtl/CMakeFiles/lowbist_rtl.dir/verilog_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/binding/CMakeFiles/lowbist_binding.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lowbist_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/lowbist_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lowbist_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
