file(REMOVE_RECURSE
  "liblowbist_rtl.a"
)
