file(REMOVE_RECURSE
  "CMakeFiles/lowbist_rtl.dir/controller.cpp.o"
  "CMakeFiles/lowbist_rtl.dir/controller.cpp.o.d"
  "CMakeFiles/lowbist_rtl.dir/datapath.cpp.o"
  "CMakeFiles/lowbist_rtl.dir/datapath.cpp.o.d"
  "CMakeFiles/lowbist_rtl.dir/ipath.cpp.o"
  "CMakeFiles/lowbist_rtl.dir/ipath.cpp.o.d"
  "CMakeFiles/lowbist_rtl.dir/simulate.cpp.o"
  "CMakeFiles/lowbist_rtl.dir/simulate.cpp.o.d"
  "CMakeFiles/lowbist_rtl.dir/testbench.cpp.o"
  "CMakeFiles/lowbist_rtl.dir/testbench.cpp.o.d"
  "CMakeFiles/lowbist_rtl.dir/vcd.cpp.o"
  "CMakeFiles/lowbist_rtl.dir/vcd.cpp.o.d"
  "CMakeFiles/lowbist_rtl.dir/verilog.cpp.o"
  "CMakeFiles/lowbist_rtl.dir/verilog.cpp.o.d"
  "CMakeFiles/lowbist_rtl.dir/verilog_controller.cpp.o"
  "CMakeFiles/lowbist_rtl.dir/verilog_controller.cpp.o.d"
  "liblowbist_rtl.a"
  "liblowbist_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowbist_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
