# Empty compiler generated dependencies file for lowbist_rtl.
# This may be replaced when dependencies are built.
