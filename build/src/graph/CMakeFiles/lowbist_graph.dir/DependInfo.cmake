
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bron_kerbosch.cpp" "src/graph/CMakeFiles/lowbist_graph.dir/bron_kerbosch.cpp.o" "gcc" "src/graph/CMakeFiles/lowbist_graph.dir/bron_kerbosch.cpp.o.d"
  "/root/repo/src/graph/chordal.cpp" "src/graph/CMakeFiles/lowbist_graph.dir/chordal.cpp.o" "gcc" "src/graph/CMakeFiles/lowbist_graph.dir/chordal.cpp.o.d"
  "/root/repo/src/graph/clique_partition.cpp" "src/graph/CMakeFiles/lowbist_graph.dir/clique_partition.cpp.o" "gcc" "src/graph/CMakeFiles/lowbist_graph.dir/clique_partition.cpp.o.d"
  "/root/repo/src/graph/coloring.cpp" "src/graph/CMakeFiles/lowbist_graph.dir/coloring.cpp.o" "gcc" "src/graph/CMakeFiles/lowbist_graph.dir/coloring.cpp.o.d"
  "/root/repo/src/graph/conflict.cpp" "src/graph/CMakeFiles/lowbist_graph.dir/conflict.cpp.o" "gcc" "src/graph/CMakeFiles/lowbist_graph.dir/conflict.cpp.o.d"
  "/root/repo/src/graph/undirected_graph.cpp" "src/graph/CMakeFiles/lowbist_graph.dir/undirected_graph.cpp.o" "gcc" "src/graph/CMakeFiles/lowbist_graph.dir/undirected_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lowbist_support.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/lowbist_dfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
