# Empty dependencies file for lowbist_graph.
# This may be replaced when dependencies are built.
