file(REMOVE_RECURSE
  "liblowbist_graph.a"
)
