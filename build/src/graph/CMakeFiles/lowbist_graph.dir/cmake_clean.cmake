file(REMOVE_RECURSE
  "CMakeFiles/lowbist_graph.dir/bron_kerbosch.cpp.o"
  "CMakeFiles/lowbist_graph.dir/bron_kerbosch.cpp.o.d"
  "CMakeFiles/lowbist_graph.dir/chordal.cpp.o"
  "CMakeFiles/lowbist_graph.dir/chordal.cpp.o.d"
  "CMakeFiles/lowbist_graph.dir/clique_partition.cpp.o"
  "CMakeFiles/lowbist_graph.dir/clique_partition.cpp.o.d"
  "CMakeFiles/lowbist_graph.dir/coloring.cpp.o"
  "CMakeFiles/lowbist_graph.dir/coloring.cpp.o.d"
  "CMakeFiles/lowbist_graph.dir/conflict.cpp.o"
  "CMakeFiles/lowbist_graph.dir/conflict.cpp.o.d"
  "CMakeFiles/lowbist_graph.dir/undirected_graph.cpp.o"
  "CMakeFiles/lowbist_graph.dir/undirected_graph.cpp.o.d"
  "liblowbist_graph.a"
  "liblowbist_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowbist_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
