
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interconnect/build_datapath.cpp" "src/interconnect/CMakeFiles/lowbist_interconnect.dir/build_datapath.cpp.o" "gcc" "src/interconnect/CMakeFiles/lowbist_interconnect.dir/build_datapath.cpp.o.d"
  "/root/repo/src/interconnect/port_assign.cpp" "src/interconnect/CMakeFiles/lowbist_interconnect.dir/port_assign.cpp.o" "gcc" "src/interconnect/CMakeFiles/lowbist_interconnect.dir/port_assign.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/binding/CMakeFiles/lowbist_binding.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/lowbist_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lowbist_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/lowbist_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lowbist_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
