file(REMOVE_RECURSE
  "liblowbist_interconnect.a"
)
