# Empty compiler generated dependencies file for lowbist_interconnect.
# This may be replaced when dependencies are built.
