file(REMOVE_RECURSE
  "CMakeFiles/lowbist_interconnect.dir/build_datapath.cpp.o"
  "CMakeFiles/lowbist_interconnect.dir/build_datapath.cpp.o.d"
  "CMakeFiles/lowbist_interconnect.dir/port_assign.cpp.o"
  "CMakeFiles/lowbist_interconnect.dir/port_assign.cpp.o.d"
  "liblowbist_interconnect.a"
  "liblowbist_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowbist_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
