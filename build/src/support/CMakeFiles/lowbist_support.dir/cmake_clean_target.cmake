file(REMOVE_RECURSE
  "liblowbist_support.a"
)
