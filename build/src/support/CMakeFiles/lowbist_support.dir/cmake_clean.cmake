file(REMOVE_RECURSE
  "CMakeFiles/lowbist_support.dir/dot.cpp.o"
  "CMakeFiles/lowbist_support.dir/dot.cpp.o.d"
  "CMakeFiles/lowbist_support.dir/json.cpp.o"
  "CMakeFiles/lowbist_support.dir/json.cpp.o.d"
  "CMakeFiles/lowbist_support.dir/lfsr.cpp.o"
  "CMakeFiles/lowbist_support.dir/lfsr.cpp.o.d"
  "CMakeFiles/lowbist_support.dir/table.cpp.o"
  "CMakeFiles/lowbist_support.dir/table.cpp.o.d"
  "liblowbist_support.a"
  "liblowbist_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowbist_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
