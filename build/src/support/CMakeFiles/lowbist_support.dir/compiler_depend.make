# Empty compiler generated dependencies file for lowbist_support.
# This may be replaced when dependencies are built.
