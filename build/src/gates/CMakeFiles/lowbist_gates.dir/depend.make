# Empty dependencies file for lowbist_gates.
# This may be replaced when dependencies are built.
