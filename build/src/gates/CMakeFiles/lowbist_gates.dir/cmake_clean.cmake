file(REMOVE_RECURSE
  "CMakeFiles/lowbist_gates.dir/cones.cpp.o"
  "CMakeFiles/lowbist_gates.dir/cones.cpp.o.d"
  "CMakeFiles/lowbist_gates.dir/gate_fault_sim.cpp.o"
  "CMakeFiles/lowbist_gates.dir/gate_fault_sim.cpp.o.d"
  "CMakeFiles/lowbist_gates.dir/gate_netlist.cpp.o"
  "CMakeFiles/lowbist_gates.dir/gate_netlist.cpp.o.d"
  "CMakeFiles/lowbist_gates.dir/gate_selftest.cpp.o"
  "CMakeFiles/lowbist_gates.dir/gate_selftest.cpp.o.d"
  "CMakeFiles/lowbist_gates.dir/module_builders.cpp.o"
  "CMakeFiles/lowbist_gates.dir/module_builders.cpp.o.d"
  "CMakeFiles/lowbist_gates.dir/techmap.cpp.o"
  "CMakeFiles/lowbist_gates.dir/techmap.cpp.o.d"
  "liblowbist_gates.a"
  "liblowbist_gates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowbist_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
