
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gates/cones.cpp" "src/gates/CMakeFiles/lowbist_gates.dir/cones.cpp.o" "gcc" "src/gates/CMakeFiles/lowbist_gates.dir/cones.cpp.o.d"
  "/root/repo/src/gates/gate_fault_sim.cpp" "src/gates/CMakeFiles/lowbist_gates.dir/gate_fault_sim.cpp.o" "gcc" "src/gates/CMakeFiles/lowbist_gates.dir/gate_fault_sim.cpp.o.d"
  "/root/repo/src/gates/gate_netlist.cpp" "src/gates/CMakeFiles/lowbist_gates.dir/gate_netlist.cpp.o" "gcc" "src/gates/CMakeFiles/lowbist_gates.dir/gate_netlist.cpp.o.d"
  "/root/repo/src/gates/gate_selftest.cpp" "src/gates/CMakeFiles/lowbist_gates.dir/gate_selftest.cpp.o" "gcc" "src/gates/CMakeFiles/lowbist_gates.dir/gate_selftest.cpp.o.d"
  "/root/repo/src/gates/module_builders.cpp" "src/gates/CMakeFiles/lowbist_gates.dir/module_builders.cpp.o" "gcc" "src/gates/CMakeFiles/lowbist_gates.dir/module_builders.cpp.o.d"
  "/root/repo/src/gates/techmap.cpp" "src/gates/CMakeFiles/lowbist_gates.dir/techmap.cpp.o" "gcc" "src/gates/CMakeFiles/lowbist_gates.dir/techmap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lowbist_support.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/lowbist_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/bist/CMakeFiles/lowbist_bist.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/lowbist_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/binding/CMakeFiles/lowbist_binding.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lowbist_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
