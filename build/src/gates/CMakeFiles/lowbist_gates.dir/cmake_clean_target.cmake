file(REMOVE_RECURSE
  "liblowbist_gates.a"
)
