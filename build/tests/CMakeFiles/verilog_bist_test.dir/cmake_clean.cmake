file(REMOVE_RECURSE
  "CMakeFiles/verilog_bist_test.dir/verilog_bist_test.cpp.o"
  "CMakeFiles/verilog_bist_test.dir/verilog_bist_test.cpp.o.d"
  "verilog_bist_test"
  "verilog_bist_test.pdb"
  "verilog_bist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verilog_bist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
