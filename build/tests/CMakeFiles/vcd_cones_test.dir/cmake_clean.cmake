file(REMOVE_RECURSE
  "CMakeFiles/vcd_cones_test.dir/vcd_cones_test.cpp.o"
  "CMakeFiles/vcd_cones_test.dir/vcd_cones_test.cpp.o.d"
  "vcd_cones_test"
  "vcd_cones_test.pdb"
  "vcd_cones_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcd_cones_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
