# Empty dependencies file for vcd_cones_test.
# This may be replaced when dependencies are built.
