# Empty compiler generated dependencies file for width_sweep_test.
# This may be replaced when dependencies are built.
