file(REMOVE_RECURSE
  "CMakeFiles/width_sweep_test.dir/width_sweep_test.cpp.o"
  "CMakeFiles/width_sweep_test.dir/width_sweep_test.cpp.o.d"
  "width_sweep_test"
  "width_sweep_test.pdb"
  "width_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/width_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
