file(REMOVE_RECURSE
  "CMakeFiles/rtl2_test.dir/rtl2_test.cpp.o"
  "CMakeFiles/rtl2_test.dir/rtl2_test.cpp.o.d"
  "rtl2_test"
  "rtl2_test.pdb"
  "rtl2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
