# Empty dependencies file for rtl2_test.
# This may be replaced when dependencies are built.
