# Empty dependencies file for selftest_test.
# This may be replaced when dependencies are built.
