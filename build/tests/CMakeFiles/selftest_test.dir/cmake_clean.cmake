file(REMOVE_RECURSE
  "CMakeFiles/selftest_test.dir/selftest_test.cpp.o"
  "CMakeFiles/selftest_test.dir/selftest_test.cpp.o.d"
  "selftest_test"
  "selftest_test.pdb"
  "selftest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selftest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
