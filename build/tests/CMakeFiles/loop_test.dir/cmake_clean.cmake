file(REMOVE_RECURSE
  "CMakeFiles/loop_test.dir/loop_test.cpp.o"
  "CMakeFiles/loop_test.dir/loop_test.cpp.o.d"
  "loop_test"
  "loop_test.pdb"
  "loop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
