file(REMOVE_RECURSE
  "CMakeFiles/controller_property_test.dir/controller_property_test.cpp.o"
  "CMakeFiles/controller_property_test.dir/controller_property_test.cpp.o.d"
  "controller_property_test"
  "controller_property_test.pdb"
  "controller_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
