file(REMOVE_RECURSE
  "CMakeFiles/bench_binding_space.dir/bench_binding_space.cpp.o"
  "CMakeFiles/bench_binding_space.dir/bench_binding_space.cpp.o.d"
  "bench_binding_space"
  "bench_binding_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_binding_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
