# Empty compiler generated dependencies file for bench_binding_space.
# This may be replaced when dependencies are built.
