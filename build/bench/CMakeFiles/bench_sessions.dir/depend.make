# Empty dependencies file for bench_sessions.
# This may be replaced when dependencies are built.
