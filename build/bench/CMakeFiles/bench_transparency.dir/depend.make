# Empty dependencies file for bench_transparency.
# This may be replaced when dependencies are built.
