file(REMOVE_RECURSE
  "CMakeFiles/bench_transparency.dir/bench_transparency.cpp.o"
  "CMakeFiles/bench_transparency.dir/bench_transparency.cpp.o.d"
  "bench_transparency"
  "bench_transparency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transparency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
