file(REMOVE_RECURSE
  "CMakeFiles/bench_gatelevel.dir/bench_gatelevel.cpp.o"
  "CMakeFiles/bench_gatelevel.dir/bench_gatelevel.cpp.o.d"
  "bench_gatelevel"
  "bench_gatelevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gatelevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
