# Empty compiler generated dependencies file for bench_gatelevel.
# This may be replaced when dependencies are built.
