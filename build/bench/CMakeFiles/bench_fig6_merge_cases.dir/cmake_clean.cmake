file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_merge_cases.dir/bench_fig6_merge_cases.cpp.o"
  "CMakeFiles/bench_fig6_merge_cases.dir/bench_fig6_merge_cases.cpp.o.d"
  "bench_fig6_merge_cases"
  "bench_fig6_merge_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_merge_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
