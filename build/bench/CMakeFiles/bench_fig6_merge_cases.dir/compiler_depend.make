# Empty compiler generated dependencies file for bench_fig6_merge_cases.
# This may be replaced when dependencies are built.
