
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_merge_cases.cpp" "bench/CMakeFiles/bench_fig6_merge_cases.dir/bench_fig6_merge_cases.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6_merge_cases.dir/bench_fig6_merge_cases.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lowbist_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gates/CMakeFiles/lowbist_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/lowbist_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lowbist_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/lowbist_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/bist/CMakeFiles/lowbist_bist.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/lowbist_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/binding/CMakeFiles/lowbist_binding.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lowbist_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/lowbist_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lowbist_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
